package lz4

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(nil, src)
	out, err := Decompress(nil, comp, MaxBlockSize)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	return out
}

func TestRoundTripEmpty(t *testing.T) {
	if comp := Compress(nil, nil); len(comp) != 0 {
		t.Fatalf("empty input compressed to %d bytes", len(comp))
	}
	out, err := Decompress(nil, nil, MaxBlockSize)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty decompress = %v, %v", out, err)
	}
}

func TestRoundTripShortInputs(t *testing.T) {
	for n := 1; n < 20; n++ {
		src := bytes.Repeat([]byte{'a'}, n)
		if got := roundTrip(t, src); !bytes.Equal(got, src) {
			t.Fatalf("n=%d: got %q want %q", n, got, src)
		}
	}
}

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100))
	got := roundTrip(t, src)
	if !bytes.Equal(got, src) {
		t.Fatal("text round trip mismatch")
	}
	comp := Compress(nil, src)
	if len(comp) >= len(src)/2 {
		t.Fatalf("repetitive text compressed to %d/%d, want < half", len(comp), len(src))
	}
}

func TestRoundTripAllZeros(t *testing.T) {
	src := make([]byte, 100000)
	got := roundTrip(t, src)
	if !bytes.Equal(got, src) {
		t.Fatal("zeros round trip mismatch")
	}
	comp := Compress(nil, src)
	if len(comp) > 500 {
		t.Fatalf("100k zeros compressed to %d bytes", len(comp))
	}
}

func TestRoundTripIncompressible(t *testing.T) {
	r := sim.NewRNG(1)
	src := make([]byte, 10000)
	for i := range src {
		src[i] = byte(r.Uint64())
	}
	got := roundTrip(t, src)
	if !bytes.Equal(got, src) {
		t.Fatal("random round trip mismatch")
	}
	if comp := Compress(nil, src); len(comp) > CompressBound(len(src)) {
		t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
	}
}

func TestRoundTripLongMatches(t *testing.T) {
	// Exercise match-length extension (>15+4 bytes) and literal-length
	// extension (>15 literals).
	var src []byte
	src = append(src, bytes.Repeat([]byte("x"), 1000)...)                  // long match
	src = append(src, []byte("abcdefghijklmnopqrstuvwxyz0123456789!@")...) // long literals
	src = append(src, bytes.Repeat([]byte("yz"), 600)...)
	got := roundTrip(t, src)
	if !bytes.Equal(got, src) {
		t.Fatal("extension round trip mismatch")
	}
}

func TestRoundTripCommandStreamShape(t *testing.T) {
	// Simulated GL command stream: varint-ish headers with repeating
	// structure, the actual workload GBooster compresses.
	var src []byte
	for i := 0; i < 500; i++ {
		src = append(src, 0x12, 0x03, byte(i), byte(i>>8), 0x00, 0x44, 0x10)
		src = append(src, []byte("glDrawElements")...)
	}
	got := roundTrip(t, src)
	if !bytes.Equal(got, src) {
		t.Fatal("command-stream round trip mismatch")
	}
	comp := Compress(nil, src)
	if r := Ratio(len(src), len(comp)); r > 0.35 {
		t.Fatalf("command-stream ratio = %.2f, want heavy compression", r)
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("HDR")
	comp := Compress(append([]byte(nil), prefix...), []byte("aaaaaaaaaaaaaaaaaaaaaaaa"))
	if !bytes.HasPrefix(comp, prefix) {
		t.Fatal("Compress did not append to dst")
	}
	out, err := Decompress([]byte("OUT"), comp[len(prefix):], MaxBlockSize)
	if err != nil || !bytes.HasPrefix(out, []byte("OUT")) {
		t.Fatalf("Decompress did not append to dst: %v", err)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	tests := []struct {
		name string
		src  []byte
	}{
		{"literal run overflow", []byte{0xF0, 0x10, 'a'}},
		{"truncated offset", []byte{0x10, 'a', 0x01}},
		{"zero offset", []byte{0x40, 'a', 'b', 'c', 'd', 0x00, 0x00}},
		{"offset beyond output", []byte{0x10, 'a', 0x05, 0x00}},
		{"truncated length ext", []byte{0xF0, 255}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decompress(nil, tt.src, MaxBlockSize); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	src := make([]byte, 100000)
	comp := Compress(nil, src)
	if _, err := Decompress(nil, comp, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit error = %v, want ErrTooLarge", err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 5) != 1 {
		t.Fatal("Ratio with zero original should be 1")
	}
	if Ratio(100, 30) != 0.3 {
		t.Fatalf("Ratio(100,30) = %v", Ratio(100, 30))
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(src []byte) bool {
		comp := Compress(nil, src)
		if len(comp) > CompressBound(len(src)) {
			return false
		}
		out, err := Decompress(nil, comp, MaxBlockSize)
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyStructured(t *testing.T) {
	// Random data rarely compresses; bias the generator toward
	// repetitive structure so match paths are exercised too.
	check := func(seed uint64, blockRaw uint8, repsRaw uint16) bool {
		r := sim.NewRNG(seed)
		block := int(blockRaw%32) + 1
		reps := int(repsRaw % 500)
		unit := make([]byte, block)
		for i := range unit {
			unit[i] = byte(r.Uint64() % 7) // low-entropy alphabet
		}
		src := bytes.Repeat(unit, reps+1)
		// Sprinkle mutations so matches break and restart.
		for i := 0; i < len(src)/50; i++ {
			src[r.Intn(len(src))] = byte(r.Uint64())
		}
		comp := Compress(nil, src)
		out, err := Decompress(nil, comp, MaxBlockSize)
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressCommandStream(b *testing.B) {
	var src []byte
	for i := 0; i < 2000; i++ {
		src = append(src, 0x12, 0x03, byte(i), byte(i>>8), 0x00, 0x44, 0x10)
		src = append(src, []byte("glDrawElements")...)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}

func BenchmarkDecompressCommandStream(b *testing.B) {
	var src []byte
	for i := 0; i < 2000; i++ {
		src = append(src, 0x12, 0x03, byte(i), byte(i>>8), 0x00, 0x44, 0x10)
		src = append(src, []byte("glDrawElements")...)
	}
	comp := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, comp, MaxBlockSize); err != nil {
			b.Fatal(err)
		}
	}
}
