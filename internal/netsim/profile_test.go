package netsim

import (
	"testing"
	"time"
)

// TestProfileByName checks catalog lookup, case-insensitivity, and the
// unknown-name error.
func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ProfileByName(%q).Name = %q", name, p.Name)
		}
	}
	if p, err := ProfileByName("LTE"); err != nil || p.Name != "lte" {
		t.Errorf("case-insensitive lookup: %+v, %v", p, err)
	}
	if _, err := ProfileByName("dialup"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestProfilePresetValues pins the two presets that replaced hand-wired
// test tuples: changing them re-tunes the adaptive-quality and rudp
// soak tests.
func TestProfilePresetValues(t *testing.T) {
	if want := (LinkConfig{Delay: time.Millisecond, Bandwidth: 150_000, MaxQueue: 25 * time.Millisecond}); WiFiCongested.Link != want {
		t.Errorf("WiFiCongested = %+v, want %+v", WiFiCongested.Link, want)
	}
	want := LinkConfig{
		Delay:     15 * time.Millisecond,
		JitterStd: 2 * time.Millisecond,
		Loss:      0.05,
		Bandwidth: 1 << 20,
		MaxQueue:  50 * time.Millisecond,
	}
	if Lossy5.Link != want {
		t.Errorf("Lossy5 = %+v, want %+v", Lossy5.Link, want)
	}
	if Loopback.Link != (LinkConfig{}) {
		t.Errorf("Loopback = %+v, want zero", Loopback.Link)
	}
}

// TestProfileNewPair smoke-tests pair construction through a profile.
func TestProfileNewPair(t *testing.T) {
	a, b := WiFiGood.NewPair(9)
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteTo([]byte("ping"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}
