package netsim

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestLinkConnDeliversWithDelay(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{Delay: 20 * time.Millisecond}, 1)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.WriteTo([]byte("ping"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	n, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" || from.String() != a.Addr().String() {
		t.Fatalf("got %q from %v", buf[:n], from)
	}
	if lat := time.Since(start); lat < 20*time.Millisecond {
		t.Fatalf("delivered after %v, before the 20ms propagation delay", lat)
	}
}

func TestLinkConnLoss(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{Loss: 1.0}, 2)
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteTo([]byte("x"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	if a.Drops != 1 {
		t.Fatalf("Drops = %d", a.Drops)
	}
	_ = b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 4)); err == nil {
		t.Fatal("dropped datagram was delivered")
	}
}

func TestLinkConnBandwidthSerialization(t *testing.T) {
	// 5 KB at 100 KB/s must take ≥50 ms to fully arrive.
	a, b := NewLinkPair(LinkConfig{Bandwidth: 100 * 1024, MaxQueue: time.Second}, 3)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := a.WriteTo(make([]byte, 1024), b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	for i := 0; i < 5; i++ {
		if _, _, err := b.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if lat := time.Since(start); lat < 45*time.Millisecond {
		t.Fatalf("5KB at 100KB/s arrived in %v; serialization not modeled", lat)
	}
}

func TestLinkConnQueueTailDrop(t *testing.T) {
	// A queue capped at 5 ms of 10 KB/s capacity holds ~50 bytes; a
	// burst far beyond that must tail-drop.
	a, b := NewLinkPair(LinkConfig{Bandwidth: 10 * 1024, MaxQueue: 5 * time.Millisecond}, 4)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 50; i++ {
		if _, err := a.WriteTo(make([]byte, 512), b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if a.QueueDrops == 0 {
		t.Fatal("burst past the queue bound produced no tail drops")
	}
}

func TestLinkConnDeadlineAndClose(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{}, 5)
	defer b.Close()
	if err := a.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, _, err := a.ReadFrom(make([]byte, 4))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo([]byte("x"), b.Addr()); !errors.Is(err, errLinkClosed) {
		t.Fatalf("write after close = %v", err)
	}
	if _, _, err := a.ReadFrom(make([]byte, 4)); !errors.Is(err, errLinkClosed) {
		t.Fatalf("read after close = %v", err)
	}
	// Close is idempotent, and a late scheduled delivery must not panic.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo([]byte("late"), a.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
}

func TestLinkConnBlackholeDropsEverything(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{}, 10)
	defer a.Close()
	defer b.Close()
	a.Blackhole()
	for i := 0; i < 3; i++ {
		if _, err := a.WriteTo([]byte("x"), b.Addr()); err != nil {
			t.Fatalf("blackholed write must not error (crash is silent): %v", err)
		}
	}
	if a.BlackholeDrops != 3 {
		t.Fatalf("BlackholeDrops = %d, want 3", a.BlackholeDrops)
	}
	_ = b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 4)); err == nil {
		t.Fatal("blackholed datagram was delivered")
	}
}

func TestLinkConnBlackholeAfterN(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{}, 11)
	defer a.Close()
	defer b.Close()
	a.BlackholeAfter(2)
	for i := 0; i < 5; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly the first two datagrams survive the armed fault.
	for i := 0; i < 2; i++ {
		_ = b.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 4)
		n, _, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatalf("pre-crash datagram %d lost: %v", i, err)
		}
		if n != 1 || buf[0] != byte(i) {
			t.Fatalf("datagram %d corrupted: % x", i, buf[:n])
		}
	}
	_ = b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 4)); err == nil {
		t.Fatal("post-crash datagram was delivered")
	}
	if a.BlackholeDrops != 3 {
		t.Fatalf("BlackholeDrops = %d, want 3", a.BlackholeDrops)
	}
}

func TestLinkConnBlackholeAfterZeroIsImmediate(t *testing.T) {
	a, b := NewLinkPair(LinkConfig{}, 12)
	defer a.Close()
	defer b.Close()
	a.BlackholeAfter(0)
	if _, err := a.WriteTo([]byte("x"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	if a.BlackholeDrops != 1 {
		t.Fatalf("BlackholeDrops = %d, want 1", a.BlackholeDrops)
	}
}
