package netsim

import (
	"errors"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// LinkConfig parameterizes a packet-level emulated path. Unlike Link
// (an analytic latency model for the virtual-time experiments),
// LinkConn really carries datagrams between two net.PacketConn
// endpoints in wall-clock time, so the reliable-UDP transport can be
// soak-tested against loss, delay, jitter, and queueing exactly as it
// would run over a radio.
type LinkConfig struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// JitterStd is the standard deviation of per-datagram delay noise
	// (truncated so delivery never precedes the propagation delay).
	JitterStd time.Duration
	// Loss is the independent datagram loss probability per direction.
	Loss float64
	// Bandwidth caps each direction in bytes/second; zero means
	// unlimited. Serialization time queues behind earlier datagrams.
	Bandwidth float64
	// MaxQueue bounds the serialization backlog: a datagram whose
	// queueing delay would exceed it is tail-dropped, the way a router
	// sheds an overflowing buffer. Zero defaults to 100 ms.
	MaxQueue time.Duration
}

func (cfg LinkConfig) withDefaults() LinkConfig {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 100 * time.Millisecond
	}
	return cfg
}

// linkAddr names a LinkConn endpoint.
type linkAddr string

// Network names the emulated network.
func (a linkAddr) Network() string { return "linksim" }

// String renders the address.
func (a linkAddr) String() string { return string(a) }

var errLinkClosed = errors.New("netsim: link conn closed")

type linkPacket struct {
	data []byte
	from net.Addr
}

// LinkConn is one endpoint of an emulated lossy/jittery/bandwidth-
// limited path. It implements net.PacketConn with real elapsed time:
// datagrams written here surface at the peer's ReadFrom after the
// configured serialization + propagation + jitter delay, or never, if
// the loss model or queue limit drops them.
type LinkConn struct {
	addr linkAddr
	cfg  LinkConfig

	mu        sync.Mutex
	peer      *LinkConn
	queue     chan linkPacket
	closed    bool
	deadline  time.Time
	busyUntil time.Time // serialization backlog of the outgoing direction
	rng       *sim.RNG

	// Device-crash fault injector state: once blackholed, every
	// datagram written at this endpoint silently vanishes, emulating a
	// crashed or unreachable device (the socket stays "open" — nothing
	// errors, nothing arrives).
	blackholed     bool
	blackholeArmed bool
	blackholeLeft  int

	// Drops counts datagrams lost to the loss model; QueueDrops those
	// tail-dropped by the bandwidth queue; BlackholeDrops those eaten
	// by the crash fault injector.
	Drops          int64
	QueueDrops     int64
	BlackholeDrops int64
}

// Blackhole makes the endpoint drop every subsequent outgoing datagram
// — the drop-all crash fault injector. To emulate a full device crash,
// blackhole both endpoints of its pair: nothing the device sends gets
// out, and nothing sent to it arrives.
func (l *LinkConn) Blackhole() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.blackholed = true
	l.blackholeArmed = false
}

// Restore lifts a blackhole (and disarms a pending one): subsequent
// datagrams flow again, emulating a crashed or partitioned device
// coming back. Datagrams eaten while dark stay lost — recovering the
// session state is the transport's and the session-bootstrap layer's
// job, not the network's.
func (l *LinkConn) Restore() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.blackholed = false
	l.blackholeArmed = false
	l.blackholeLeft = 0
}

// BlackholeAfter arms the fault injector: the next n datagrams written
// here still pass, every later one vanishes.
func (l *LinkConn) BlackholeAfter(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		l.blackholed = true
		l.blackholeArmed = false
		return
	}
	l.blackholeArmed = true
	l.blackholeLeft = n
}

// NewLinkPair returns two connected emulated endpoints sharing cfg,
// with independent loss/jitter randomness per direction derived from
// seed.
func NewLinkPair(cfg LinkConfig, seed uint64) (*LinkConn, *LinkConn) {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(seed)
	a := &LinkConn{addr: "link-a", cfg: cfg, queue: make(chan linkPacket, 4096), rng: rng.Fork()}
	b := &LinkConn{addr: "link-b", cfg: cfg, queue: make(chan linkPacket, 4096), rng: rng.Fork()}
	a.peer, b.peer = b, a
	return a, b
}

// LocalAddr implements net.PacketConn.
func (l *LinkConn) LocalAddr() net.Addr { return l.addr }

// Addr returns the endpoint's address for use as a peer address.
func (l *LinkConn) Addr() net.Addr { return l.addr }

// WriteTo implements net.PacketConn, scheduling delayed delivery at the
// peer. The write itself never blocks: the emulated queue absorbs (or
// drops) the datagram immediately.
func (l *LinkConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errLinkClosed
	}
	peer := l.peer
	if addr.String() != string(peer.addr) {
		l.mu.Unlock()
		return 0, errors.New("netsim: unknown link peer")
	}
	if l.blackholeArmed {
		if l.blackholeLeft > 0 {
			l.blackholeLeft--
		}
		if l.blackholeLeft == 0 {
			l.blackholed = true
			l.blackholeArmed = false
		}
	} else if l.blackholed {
		l.BlackholeDrops++
		l.mu.Unlock()
		return len(p), nil // crashed device: lost without a trace
	}
	if l.cfg.Loss > 0 && l.rng.Bool(l.cfg.Loss) {
		l.Drops++
		l.mu.Unlock()
		return len(p), nil // lost in flight
	}
	now := time.Now()
	var txDelay time.Duration
	if l.cfg.Bandwidth > 0 {
		if l.busyUntil.Before(now) {
			l.busyUntil = now
		}
		if l.busyUntil.Sub(now) > l.cfg.MaxQueue {
			l.QueueDrops++
			l.mu.Unlock()
			return len(p), nil // queue overflow: tail drop
		}
		tx := time.Duration(float64(len(p)) / l.cfg.Bandwidth * float64(time.Second))
		l.busyUntil = l.busyUntil.Add(tx)
		txDelay = l.busyUntil.Sub(now)
	}
	delay := txDelay + l.cfg.Delay
	if l.cfg.JitterStd > 0 {
		j := time.Duration(l.rng.Norm(0, float64(l.cfg.JitterStd)))
		if j > 0 {
			delay += j
		}
	}
	l.mu.Unlock()

	pkt := linkPacket{data: append([]byte(nil), p...), from: l.addr}
	if delay <= 0 {
		peer.deliver(pkt)
	} else {
		time.AfterFunc(delay, func() { peer.deliver(pkt) })
	}
	return len(p), nil
}

// InjectFrom surfaces data at this endpoint's ReadFrom as if it had
// arrived from an arbitrary source address — an off-path datagram the
// link peer never sent. It is the spoofing fault injector for testing
// source-address validation: a transport that trusts every datagram on
// its socket will process the forgery as peer traffic.
func (l *LinkConn) InjectFrom(from net.Addr, data []byte) {
	l.deliver(linkPacket{data: append([]byte(nil), data...), from: from})
}

// deliver enqueues a packet under the receiver's lock so a concurrent
// Close cannot race the channel send. A full queue behaves like a
// receive-buffer drop.
func (l *LinkConn) deliver(pkt linkPacket) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	select {
	case l.queue <- pkt:
	default:
		l.QueueDrops++
	}
}

// ReadFrom implements net.PacketConn honoring the read deadline.
func (l *LinkConn) ReadFrom(p []byte) (int, net.Addr, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, errLinkClosed
	}
	deadline := l.deadline
	l.mu.Unlock()

	var timer <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, nil, &linkTimeoutError{}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case pkt, ok := <-l.queue:
		if !ok {
			return 0, nil, errLinkClosed
		}
		n := copy(p, pkt.data)
		return n, pkt.from, nil
	case <-timer:
		return 0, nil, &linkTimeoutError{}
	}
}

// Close implements net.PacketConn.
func (l *LinkConn) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.queue)
	}
	return nil
}

// SetDeadline implements net.PacketConn (read side only; writes never
// block).
func (l *LinkConn) SetDeadline(t time.Time) error { return l.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (l *LinkConn) SetReadDeadline(t time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn (no-op: writes never
// block).
func (l *LinkConn) SetWriteDeadline(time.Time) error { return nil }

// linkTimeoutError satisfies net.Error for deadline expiry.
type linkTimeoutError struct{}

func (*linkTimeoutError) Error() string   { return "netsim: i/o timeout" }
func (*linkTimeoutError) Timeout() bool   { return true }
func (*linkTimeoutError) Temporary() bool { return true }

var _ net.PacketConn = (*LinkConn)(nil)
var _ net.Error = (*linkTimeoutError)(nil)
