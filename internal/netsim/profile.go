package netsim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is a named link-emulation preset: a LinkConfig with an
// identity, so harness flags, soak tests, and scenario definitions can
// say "lte" instead of repeating a five-field tuple. Construct by name
// with ProfileByName, or use the package variables directly.
type Profile struct {
	// Name is the flag-friendly identifier ("wifi-good", "lte", ...).
	Name string
	// Link is the path emulation the profile stands for.
	Link LinkConfig
}

// The preset catalog. WiFiCongested and Lossy5 reproduce the exact
// tuples the adaptive-quality and rudp soak tests had been wiring by
// hand, so porting those tests onto profiles changes no behavior.
var (
	// Loopback is a perfect link: no delay, loss, or bandwidth cap.
	Loopback = Profile{Name: "loopback", Link: LinkConfig{}}

	// WiFiGood is an uncongested local WLAN: ~1 ms, ~100 Mbit/s,
	// negligible loss.
	WiFiGood = Profile{Name: "wifi-good", Link: LinkConfig{
		Delay:     time.Millisecond,
		JitterStd: 200 * time.Microsecond,
		Loss:      0.001,
		Bandwidth: 12_500_000,
		MaxQueue:  50 * time.Millisecond,
	}}

	// WiFiCongested is a WLAN whose share of airtime has collapsed:
	// 150 KB/s with a shallow 25 ms buffer, so sustained streams queue
	// and tail-drop. This is the tuple the adaptive-quality ladder is
	// tuned against.
	WiFiCongested = Profile{Name: "wifi-congested", Link: LinkConfig{
		Delay:     time.Millisecond,
		Bandwidth: 150_000,
		MaxQueue:  25 * time.Millisecond,
	}}

	// LTE is a decent cellular path: ~25 ms, ~30 Mbit/s, light loss,
	// deep buffers.
	LTE = Profile{Name: "lte", Link: LinkConfig{
		Delay:     25 * time.Millisecond,
		JitterStd: 4 * time.Millisecond,
		Loss:      0.005,
		Bandwidth: 3_750_000,
		MaxQueue:  100 * time.Millisecond,
	}}

	// Lossy5 is the rudp soak link: 5% independent datagram loss with
	// moderate delay and 1 MB/s — the transport's recovery torture
	// case.
	Lossy5 = Profile{Name: "lossy5", Link: LinkConfig{
		Delay:     15 * time.Millisecond,
		JitterStd: 2 * time.Millisecond,
		Loss:      0.05,
		Bandwidth: 1 << 20,
		MaxQueue:  50 * time.Millisecond,
	}}
)

// profiles indexes the catalog by name.
var profiles = map[string]Profile{
	Loopback.Name:      Loopback,
	WiFiGood.Name:      WiFiGood,
	WiFiCongested.Name: WiFiCongested,
	LTE.Name:           LTE,
	Lossy5.Name:        Lossy5,
}

// ProfileNames returns the catalog's names, sorted, for flag help and
// error messages.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName returns the named preset (case-insensitive). Unknown
// names error, listing the catalog.
func ProfileByName(name string) (Profile, error) {
	if p, ok := profiles[strings.ToLower(name)]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("netsim: unknown link profile %q (have %s)", name, strings.Join(ProfileNames(), ", "))
}

// NewPair returns two connected endpoints emulating the profile, like
// NewLinkPair with the profile's config.
func (p Profile) NewPair(seed uint64) (*LinkConn, *LinkConn) {
	return NewLinkPair(p.Link, seed)
}
