package netsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

func TestRadioStateMachine(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOff)
	if r.Ready() {
		t.Fatal("off radio reported ready")
	}
	readyAt := r.Wake()
	if want := 100 * time.Millisecond; readyAt != want {
		t.Fatalf("wake deadline = %v, want %v", readyAt, want)
	}
	if r.Ready() {
		t.Fatal("radio ready before wake latency elapsed")
	}
	if r.State() != StateWaking {
		t.Fatalf("state = %v, want waking", r.State())
	}
	clock.Advance(100 * time.Millisecond)
	if !r.Ready() {
		t.Fatal("radio not ready after wake latency")
	}
	r.Sleep()
	if r.State() != StateOff {
		t.Fatalf("state after sleep = %v", r.State())
	}
	r.Sleep() // idempotent
	if r.State() != StateOff {
		t.Fatal("double sleep changed state")
	}
}

func TestRadioReassociationLatency(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOn)
	r.Sleep()
	// Short nap: plain wake latency.
	clock.Advance(time.Second)
	ready := r.Wake()
	if got := ready - clock.Now(); got != 100*time.Millisecond {
		t.Fatalf("short-nap wake latency = %v, want 100ms", got)
	}
	clock.Advance(100 * time.Millisecond)
	r.Sleep()
	// Long sleep: must re-associate.
	clock.Advance(10 * time.Second)
	ready = r.Wake()
	if got := ready - clock.Now(); got != 500*time.Millisecond {
		t.Fatalf("long-sleep wake latency = %v, want 500ms", got)
	}
}

func TestRadioWakeWhileWakingKeepsDeadline(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOff)
	first := r.Wake()
	clock.Advance(30 * time.Millisecond)
	second := r.Wake()
	if first != second {
		t.Fatalf("second Wake moved deadline %v -> %v", first, second)
	}
	clock.Advance(100 * time.Millisecond)
	if got := r.Wake(); got != clock.Now() {
		t.Fatalf("Wake on ready radio = %v, want now %v", got, clock.Now())
	}
}

func TestRadioTransmitTimeAndAccounting(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOn)
	// 75 Mbps -> 9.375 MB/s; 937500 bytes should take 100 ms.
	d, err := r.Transmit(937500)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Round(time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("tx time = %v, want 100ms", got)
	}
	if r.BytesSent() != 937500 || r.BusyTime() != d {
		t.Fatalf("accounting: %d bytes, %v busy", r.BytesSent(), r.BusyTime())
	}
}

func TestRadioTransmitNotReady(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOff)
	if _, err := r.Transmit(100); !errors.Is(err, ErrRadioNotReady) {
		t.Fatalf("transmit off error = %v", err)
	}
	r.Wake()
	if _, err := r.Transmit(100); !errors.Is(err, ErrRadioNotReady) {
		t.Fatalf("transmit waking error = %v", err)
	}
	if _, err := r.Transmit(-1); !errors.Is(err, ErrBadTransfer) {
		t.Fatalf("negative size error = %v", err)
	}
}

func TestRadioEnergyIntegration(t *testing.T) {
	var clock sim.Clock
	spec := WiFi80211n()
	r := NewRadio(&clock, spec, StateOn)
	// 10 s idle.
	clock.Advance(10 * time.Second)
	idle := r.EnergyJoules()
	if want := spec.PowerIdle * 10; math.Abs(idle-want) > 1e-9 {
		t.Fatalf("idle energy = %v J, want %v", idle, want)
	}
	// Transmit 1 second's worth of bytes: adds (PowerTx-PowerIdle)*1s,
	// plus idle power continues over that second once we advance.
	oneSec := int(spec.BitsPerSecond / 8)
	d, err := r.Transmit(oneSec)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(d)
	total := r.EnergyJoules()
	want := spec.PowerIdle*11 + (spec.PowerTx-spec.PowerIdle)*1
	if math.Abs(total-want) > 0.01 {
		t.Fatalf("energy after tx = %v J, want %v", total, want)
	}
}

func TestRadioOffEnergyNearZero(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOff)
	clock.Advance(100 * time.Second)
	if e := r.EnergyJoules(); e > 2 {
		t.Fatalf("off energy over 100s = %v J, want ~1", e)
	}
}

func TestBluetoothOrderOfMagnitude(t *testing.T) {
	// The §V-B premise: BT is ~10x less power and ~10x less throughput.
	wifi, bt := WiFi80211n(), BluetoothHS()
	if ratio := wifi.PowerTx / bt.PowerTx; ratio < 10 {
		t.Fatalf("power ratio = %.1f, want >= 10", ratio)
	}
	if ratio := wifi.BitsPerSecond / bt.BitsPerSecond; ratio < 3 || ratio > 30 {
		t.Fatalf("throughput ratio = %.1f, want order of magnitude", ratio)
	}
}

func TestRadioStateString(t *testing.T) {
	for s, want := range map[RadioState]string{
		StateOff: "off", StateWaking: "waking", StateOn: "on", RadioState(9): "RadioState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("state %d = %q, want %q", int(s), got, want)
		}
	}
}

func TestLinkDeliverLossless(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOn)
	l := NewLink(r, 2*time.Millisecond, 0, sim.NewRNG(1))
	lat, err := l.Deliver(9375) // 1 ms serialization at 75 Mbps
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * time.Millisecond // 1ms tx + 1ms half-RTT
	if d := lat - want; d < -time.Microsecond*100 || d > time.Microsecond*100 {
		t.Fatalf("latency = %v, want ~%v", lat, want)
	}
	if l.Stats.Transfers != 1 || l.Stats.Bytes != 9375 {
		t.Fatalf("stats %+v", l.Stats)
	}
	if got := l.OneWay(9375); got != want {
		t.Fatalf("OneWay = %v, want %v", got, want)
	}
}

func TestLinkLossCostsRetransmits(t *testing.T) {
	var clock sim.Clock
	mk := func(loss float64) (time.Duration, int) {
		r := NewRadio(&clock, WiFi80211n(), StateOn)
		l := NewLink(r, 4*time.Millisecond, loss, sim.NewRNG(42))
		var total time.Duration
		for i := 0; i < 500; i++ {
			lat, err := l.Deliver(10000)
			if err != nil {
				t.Fatal(err)
			}
			total += lat
		}
		return total, l.Stats.Retransmits
	}
	clean, cleanRetx := mk(0)
	lossy, lossyRetx := mk(0.2)
	if cleanRetx != 0 {
		t.Fatalf("lossless link retransmitted %d times", cleanRetx)
	}
	if lossyRetx == 0 {
		t.Fatal("lossy link never retransmitted")
	}
	if lossy <= clean {
		t.Fatalf("lossy total latency %v <= clean %v", lossy, clean)
	}
}

func TestLinkDeliverRequiresReadyRadio(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOff)
	l := NewLink(r, time.Millisecond, 0, sim.NewRNG(1))
	if _, err := l.Deliver(100); !errors.Is(err, ErrRadioNotReady) {
		t.Fatalf("deliver on off radio error = %v", err)
	}
}

func TestMeterWindows(t *testing.T) {
	var clock sim.Clock
	m := NewMeter(&clock, 100*time.Millisecond)
	m.Add(125000) // 125 kB in window 0 -> 10 Mbps
	clock.Advance(100 * time.Millisecond)
	m.Add(250000) // window 1 -> 20 Mbps
	clock.Advance(250 * time.Millisecond)
	s := m.Series()
	if len(s) != 3 {
		t.Fatalf("series length = %d, want 3 closed windows", len(s))
	}
	if math.Abs(s[0]-10) > 0.01 || math.Abs(s[1]-20) > 0.01 || s[2] != 0 {
		t.Fatalf("series = %v, want [10 20 0]", s)
	}
}

func TestMeterCurrentRate(t *testing.T) {
	var clock sim.Clock
	m := NewMeter(&clock, time.Second)
	clock.Advance(500 * time.Millisecond)
	m.Add(625000) // 5 Mb in 0.5 s -> 10 Mbps so far
	if got := m.CurrentMbps(); math.Abs(got-10) > 0.01 {
		t.Fatalf("CurrentMbps = %v, want 10", got)
	}
	if m.Window() != time.Second {
		t.Fatal("Window() wrong")
	}
}

func TestMeterDefaultWindow(t *testing.T) {
	var clock sim.Clock
	m := NewMeter(&clock, 0)
	if m.Window() != 100*time.Millisecond {
		t.Fatalf("default window = %v", m.Window())
	}
}

func TestLinkJitterVariesLatency(t *testing.T) {
	var clock sim.Clock
	r := NewRadio(&clock, WiFi80211n(), StateOn)
	l := NewLink(r, 4*time.Millisecond, 0, sim.NewRNG(8))
	l.JitterStd = time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		lat, err := l.Deliver(1000)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= 0 {
			t.Fatalf("non-positive latency %v", lat)
		}
		seen[lat] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jittered latencies collapsed to %d distinct values", len(seen))
	}
}

func TestMeterConservationProperty(t *testing.T) {
	// Total bytes added equals the integral of the reported series plus
	// the open window.
	var clock sim.Clock
	m := NewMeter(&clock, 100*time.Millisecond)
	rng := sim.NewRNG(12)
	var total int64
	for i := 0; i < 500; i++ {
		n := rng.Intn(5000)
		m.Add(n)
		total += int64(n)
		clock.Advance(time.Duration(rng.Intn(50)) * time.Millisecond)
	}
	var fromSeries float64
	for _, mbps := range m.Series() {
		fromSeries += mbps * 1e6 / 8 * 0.1 // bytes per closed window
	}
	openBytes := m.CurrentMbps() * 1e6 / 8 * (float64(clock.Now()-time.Duration(len(m.Series()))*100*time.Millisecond) / float64(time.Second))
	got := fromSeries + openBytes
	if got < float64(total)*0.99 || got > float64(total)*1.01 {
		t.Fatalf("meter accounted %.0f bytes of %d", got, total)
	}
}
