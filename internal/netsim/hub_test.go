package netsim

import (
	"testing"
	"time"
)

// TestHubRoutesByPort checks the demux-critical property: uplink
// datagrams surface at the hub carrying their port's unique source
// address, and hub writes route to exactly the addressed port.
func TestHubRoutesByPort(t *testing.T) {
	hub := NewHub("")
	defer hub.Close()
	a, err := hub.Attach("client-a", LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Attach("client-b", LinkConfig{}, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := a.WriteTo([]byte("from-a"), hub.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo([]byte("from-b"), hub.Addr()); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	buf := make([]byte, 64)
	_ = hub.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 2; i++ {
		n, from, err := hub.ReadFrom(buf)
		if err != nil {
			t.Fatalf("hub read %d: %v", i, err)
		}
		seen[from.String()] = string(buf[:n])
	}
	if seen["client-a"] != "from-a" || seen["client-b"] != "from-b" {
		t.Fatalf("hub saw %v", seen)
	}

	// Downlink: write to client-b only; client-a must stay silent.
	if _, err := hub.WriteTo([]byte("to-b"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, from, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "to-b" || from.String() != "hub" {
		t.Fatalf("b read = %q from %v err %v", buf[:n], from, err)
	}
	_ = a.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, from, err := a.ReadFrom(buf); err == nil {
		t.Fatalf("a unexpectedly read %q from %v", buf[:n], from)
	}
}

// TestHubBlackholeAndDetach checks the crash injectors: a blackholed
// port eats traffic both ways but flows again after Restore, and
// writes to a detached port are counted, not errored.
func TestHubBlackholeAndDetach(t *testing.T) {
	hub := NewHub("")
	defer hub.Close()
	p, err := hub.Attach("victim", LinkConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}

	p.Blackhole()
	if _, err := p.WriteTo([]byte("up"), hub.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.WriteTo([]byte("down"), p.Addr()); err != nil {
		t.Fatal(err)
	}
	if p.BlackholeDrops != 2 {
		t.Fatalf("BlackholeDrops = %d, want 2", p.BlackholeDrops)
	}
	buf := make([]byte, 64)
	_ = hub.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := hub.ReadFrom(buf); err == nil {
		t.Fatal("blackholed uplink datagram arrived")
	}

	p.Restore()
	if _, err := p.WriteTo([]byte("alive"), hub.Addr()); err != nil {
		t.Fatal(err)
	}
	_ = hub.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, _, err := hub.ReadFrom(buf); err != nil || string(buf[:n]) != "alive" {
		t.Fatalf("post-restore read = %q, %v", buf[:n], err)
	}

	addr := p.Addr()
	_ = p.Close()
	if _, err := hub.WriteTo([]byte("ghost"), addr); err != nil {
		t.Fatalf("write to detached port errored: %v", err)
	}
	hub.mu.Lock()
	drops := hub.DetachedDrops
	hub.mu.Unlock()
	if drops != 1 {
		t.Fatalf("DetachedDrops = %d, want 1", drops)
	}

	if _, err := hub.Attach("victim", LinkConfig{}, 4); err != nil {
		t.Fatalf("reattach after close: %v", err)
	}
}

// TestHubAttachValidation covers the attach error cases.
func TestHubAttachValidation(t *testing.T) {
	hub := NewHub("")
	if _, err := hub.Attach("", LinkConfig{}, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := hub.Attach("hub", LinkConfig{}, 1); err == nil {
		t.Error("hub's own name accepted")
	}
	if _, err := hub.Attach("dup", LinkConfig{}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Attach("dup", LinkConfig{}, 2); err == nil {
		t.Error("duplicate name accepted")
	}
	_ = hub.Close()
	if _, err := hub.Attach("late", LinkConfig{}, 1); err == nil {
		t.Error("attach after close accepted")
	}
}

// TestHubShapesPerPort checks each port shapes independently: a lossy
// port drops roughly its configured fraction while a clean port loses
// nothing.
func TestHubShapesPerPort(t *testing.T) {
	hub := NewHub("")
	defer hub.Close()
	clean, err := hub.Attach("clean", LinkConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := hub.Attach("lossy", LinkConfig{Loss: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}

	const sent = 400
	for i := 0; i < sent; i++ {
		if _, err := clean.WriteTo([]byte{1}, hub.Addr()); err != nil {
			t.Fatal(err)
		}
		if _, err := lossy.WriteTo([]byte{2}, hub.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int{}
	buf := make([]byte, 16)
	for {
		_ = hub.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		_, from, err := hub.ReadFrom(buf)
		if err != nil {
			break
		}
		got[from.String()]++
	}
	if got["clean"] != sent {
		t.Errorf("clean port delivered %d/%d", got["clean"], sent)
	}
	if got["lossy"] < sent/4 || got["lossy"] > 3*sent/4 {
		t.Errorf("lossy port delivered %d/%d, want ~%d", got["lossy"], sent, sent/2)
	}
	lossy.mu.Lock()
	drops := lossy.up.Drops
	lossy.mu.Unlock()
	if got["lossy"]+int(drops) != sent {
		t.Errorf("lossy delivered %d + dropped %d != sent %d", got["lossy"], drops, sent)
	}
}
