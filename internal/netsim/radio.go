// Package netsim models the wireless interfaces and links GBooster's
// transport runs over (paper §V). The real system drives a phone's WiFi
// and Bluetooth hardware; this substituted model carries the properties
// the paper's mechanisms depend on:
//
//   - bandwidth and power per interface (WiFi ≈ 2 W at full rate and an
//     order of magnitude more throughput; Bluetooth < 0.1 W and an
//     order of magnitude less, per the paper's §V-B numbers),
//   - wake-up latency: ≥100 ms to enable a disabled WiFi interface and
//     ≥500 ms when it must re-associate after sleeping a while — the
//     delays the ARMAX forecaster exists to hide,
//   - per-transfer latency and loss for links to service devices,
//   - energy integration over the virtual clock.
package netsim

import (
	"errors"
	"fmt"
	"time"
)

// Clock is the time source radios and meters integrate over. The
// simulator's *sim.Clock satisfies it, as does any wall-clock adapter
// that reports elapsed time as an offset from a fixed origin — which is
// what lets the live predictive control plane reuse the same radio and
// metering model the offline studies run.
type Clock interface {
	Now() time.Duration
}

// Radio errors.
var (
	ErrRadioNotReady = errors.New("netsim: radio not ready")
	ErrBadTransfer   = errors.New("netsim: invalid transfer size")
)

// RadioState enumerates the interface power states.
type RadioState int

// States. A waking radio becomes ready only after its wake deadline.
const (
	StateOff RadioState = iota + 1
	StateWaking
	StateOn
)

// String names the state.
func (s RadioState) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateWaking:
		return "waking"
	case StateOn:
		return "on"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

// RadioSpec is the static description of a wireless interface.
type RadioSpec struct {
	Name string
	// BitsPerSecond is the effective application-layer throughput.
	BitsPerSecond float64
	// PowerTx is drawn while transmitting; PowerIdle while on but not
	// transmitting; PowerOff while disabled (usually ~0).
	PowerTx, PowerIdle, PowerOff float64 // watts
	// WakeLatency is the time from Wake() to ready when the interface
	// was disabled briefly; ReassocLatency applies when it has been off
	// longer than ReassocAfter and must re-associate with its AP.
	WakeLatency    time.Duration
	ReassocLatency time.Duration
	ReassocAfter   time.Duration
}

// WiFi80211n matches the paper's testbed: a 150 Mbps 802.11n network
// (≈75 Mbps effective application throughput), ~2 W transmit power, and
// the measured 100 ms / >500 ms wake and re-associate latencies.
func WiFi80211n() RadioSpec {
	return RadioSpec{
		Name:           "wifi",
		BitsPerSecond:  75e6,
		PowerTx:        2.0,
		PowerIdle:      0.5,
		PowerOff:       0.01,
		WakeLatency:    100 * time.Millisecond,
		ReassocLatency: 500 * time.Millisecond,
		ReassocAfter:   3 * time.Second,
	}
}

// BluetoothHS matches the paper's Bluetooth numbers: ≈21 Mbps peak
// (≈18 Mbps effective) at under 0.1 W. It is always on (its idle power
// is negligible), so it has no wake machinery.
func BluetoothHS() RadioSpec {
	return RadioSpec{
		Name:          "bluetooth",
		BitsPerSecond: 18e6,
		PowerTx:       0.09,
		PowerIdle:     0.01,
		PowerOff:      0.001,
		WakeLatency:   10 * time.Millisecond,
	}
}

// Radio is a live interface instance bound to a virtual clock.
type Radio struct {
	Spec RadioSpec

	clock       Clock
	state       RadioState
	readyAt     time.Duration // when a waking radio becomes usable
	lastChange  time.Duration // for energy integration
	lastOffTime time.Duration // when the radio was last turned off

	energyJ   float64
	bytesSent int64
	txTime    time.Duration
}

// NewRadio returns a radio in the given initial state.
func NewRadio(clock Clock, spec RadioSpec, initial RadioState) *Radio {
	if initial != StateOff && initial != StateOn {
		initial = StateOff
	}
	return &Radio{
		Spec:       spec,
		clock:      clock,
		state:      initial,
		lastChange: clock.Now(),
	}
}

// State returns the radio's state, resolving a completed wake.
func (r *Radio) State() RadioState {
	if r.state == StateWaking && r.clock.Now() >= r.readyAt {
		r.accrue()
		r.state = StateOn
	}
	return r.state
}

// Ready reports whether the radio can transmit right now.
func (r *Radio) Ready() bool { return r.State() == StateOn }

// accrue integrates power over the time spent in the current state.
func (r *Radio) accrue() {
	now := r.clock.Now()
	dt := (now - r.lastChange).Seconds()
	if dt < 0 {
		dt = 0
	}
	var p float64
	switch r.state {
	case StateOff:
		p = r.Spec.PowerOff
	case StateWaking, StateOn:
		p = r.Spec.PowerIdle
	}
	r.energyJ += p * dt
	r.lastChange = now
}

// Wake begins enabling the radio and returns when it will be ready. If
// it is already on (or waking), the existing deadline is returned. A
// radio off longer than ReassocAfter pays the re-association latency.
func (r *Radio) Wake() time.Duration {
	switch r.State() {
	case StateOn:
		return r.clock.Now()
	case StateWaking:
		return r.readyAt
	}
	r.accrue()
	lat := r.Spec.WakeLatency
	if r.Spec.ReassocLatency > 0 && r.clock.Now()-r.lastOffTime > r.Spec.ReassocAfter {
		lat = r.Spec.ReassocLatency
	}
	r.state = StateWaking
	r.readyAt = r.clock.Now() + lat
	return r.readyAt
}

// Sleep disables the radio immediately.
func (r *Radio) Sleep() {
	if r.State() == StateOff {
		return
	}
	r.accrue()
	r.state = StateOff
	r.lastOffTime = r.clock.Now()
}

// TxTime returns the serialization time for n bytes at the radio's
// effective rate.
func (r *Radio) TxTime(n int) time.Duration {
	if n <= 0 || r.Spec.BitsPerSecond <= 0 {
		return 0
	}
	sec := float64(n) * 8 / r.Spec.BitsPerSecond
	return time.Duration(sec * float64(time.Second))
}

// Transmit accounts for sending n bytes: it charges transmit energy and
// returns the serialization time. The radio must be ready; callers
// advance the clock themselves (transfers from multiple components can
// overlap in the pipeline model).
func (r *Radio) Transmit(n int) (time.Duration, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadTransfer, n)
	}
	if !r.Ready() {
		return 0, fmt.Errorf("%w: %s is %v", ErrRadioNotReady, r.Spec.Name, r.state)
	}
	r.accrue()
	d := r.TxTime(n)
	r.energyJ += (r.Spec.PowerTx - r.Spec.PowerIdle) * d.Seconds()
	r.bytesSent += int64(n)
	r.txTime += d
	return d, nil
}

// EnergyJoules returns total energy consumed through the current
// virtual time.
func (r *Radio) EnergyJoules() float64 {
	r.accrue()
	return r.energyJ
}

// BytesSent returns the cumulative payload volume.
func (r *Radio) BytesSent() int64 { return r.bytesSent }

// BusyTime returns cumulative transmit (serialization) time.
func (r *Radio) BusyTime() time.Duration { return r.txTime }
