package netsim

import (
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// Link models the path from the user device to one service device over
// a given radio: propagation RTT, random loss (recovered by the
// reliable-UDP layer at the cost of one extra RTT per lost datagram),
// and jitter.
type Link struct {
	Radio *Radio
	// RTT is the round-trip propagation+processing delay, excluding
	// serialization time.
	RTT time.Duration
	// Loss is the independent datagram loss probability the app-layer
	// reliability must recover from.
	Loss float64
	// JitterStd is the standard deviation of one-way delay noise.
	JitterStd time.Duration

	rng *sim.RNG

	// Stats accumulate delivery behaviour.
	Stats LinkStats
}

// LinkStats counts link activity.
type LinkStats struct {
	Transfers    int
	Bytes        int64
	Retransmits  int
	TotalLatency time.Duration
}

// NewLink builds a link over radio with the given path RTT and loss.
func NewLink(radio *Radio, rtt time.Duration, loss float64, rng *sim.RNG) *Link {
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	return &Link{Radio: radio, RTT: rtt, Loss: loss, rng: rng}
}

// OneWay returns the expected one-way latency for n bytes with the
// radio's current rate (no loss, no jitter): serialization + half RTT.
func (l *Link) OneWay(n int) time.Duration {
	return l.Radio.TxTime(n) + l.RTT/2
}

// Deliver accounts for reliably delivering n bytes across the link and
// returns the simulated one-way latency including retransmissions and
// jitter. The radio must be ready.
func (l *Link) Deliver(n int) (time.Duration, error) {
	txTime, err := l.Radio.Transmit(n)
	if err != nil {
		return 0, err
	}
	lat := txTime + l.RTT/2
	// Each loss costs a retransmission round trip plus resending.
	for l.Loss > 0 && l.rng.Bool(l.Loss) {
		l.Stats.Retransmits++
		re, err := l.Radio.Transmit(n)
		if err != nil {
			return lat, err
		}
		lat += l.RTT + re
	}
	if l.JitterStd > 0 {
		j := time.Duration(l.rng.Norm(0, float64(l.JitterStd)))
		if lat+j > 0 {
			lat += j
		}
	}
	l.Stats.Transfers++
	l.Stats.Bytes += int64(n)
	l.Stats.TotalLatency += lat
	return lat, nil
}

// Meter accumulates traffic volume into fixed windows, producing the
// demand series the §V-B forecaster consumes (bytes per window,
// reported in Mbps).
type Meter struct {
	clock  Clock
	window time.Duration

	currentStart time.Duration
	currentBytes int64
	series       []float64
}

// NewMeter returns a meter with the given sampling window.
func NewMeter(clock Clock, window time.Duration) *Meter {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	return &Meter{clock: clock, window: window, currentStart: clock.Now()}
}

// Add records n bytes of traffic at the current virtual time, closing
// any windows that have elapsed.
func (m *Meter) Add(n int) {
	m.roll()
	m.currentBytes += int64(n)
}

// roll closes every window older than the current time.
func (m *Meter) roll() {
	now := m.clock.Now()
	for now-m.currentStart >= m.window {
		m.series = append(m.series, m.toMbps(m.currentBytes))
		m.currentBytes = 0
		m.currentStart += m.window
	}
}

func (m *Meter) toMbps(bytes int64) float64 {
	return float64(bytes) * 8 / m.window.Seconds() / 1e6
}

// Series returns the closed windows so far as Mbps samples.
func (m *Meter) Series() []float64 {
	m.roll()
	return append([]float64(nil), m.series...)
}

// Window returns the sampling window.
func (m *Meter) Window() time.Duration { return m.window }

// CurrentMbps reports the (incomplete) current window's rate so far,
// useful for instantaneous decisions.
func (m *Meter) CurrentMbps() float64 {
	m.roll()
	elapsed := m.clock.Now() - m.currentStart
	if elapsed <= 0 {
		return 0
	}
	return float64(m.currentBytes) * 8 / elapsed.Seconds() / 1e6
}
