package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// Hub is the fleet-side endpoint of a many-client emulated network: one
// net.PacketConn aggregating any number of per-client emulated links,
// each with its own loss/jitter/bandwidth model and a unique source
// address. A LinkConn pair cannot serve this topology — both ends of
// every pair share the fixed "link-a"/"link-b" addresses, and a fleet
// demultiplexes sessions by source address — so the load harness hands
// a Hub to Fleet.ServeConn and one HubPort to each simulated player.
//
// Datagram flow: a client writes into its HubPort, the port's uplink
// shaper delays or drops it, and it surfaces at the Hub's ReadFrom with
// the port's address; the fleet writes to that address, the port's
// downlink shaper runs, and the datagram surfaces at the port's
// ReadFrom. The two directions shape independently, like LinkConn's.
type Hub struct {
	addr linkAddr

	mu       sync.Mutex
	ports    map[string]*HubPort
	queue    chan linkPacket
	closed   bool
	deadline time.Time

	// DetachedDrops counts datagrams the fleet wrote to an address with
	// no attached port — traffic to a departed (or crashed and
	// detached) client, which a real network would also eat.
	DetachedDrops int64
}

// NewHub returns an empty hub named addr ("hub" if empty).
func NewHub(addr string) *Hub {
	if addr == "" {
		addr = "hub"
	}
	return &Hub{
		addr:  linkAddr(addr),
		ports: make(map[string]*HubPort),
		queue: make(chan linkPacket, 16384),
	}
}

// HubPort is one client's endpoint on a Hub: a net.PacketConn whose
// peer is the hub address, with independent uplink/downlink shaping.
type HubPort struct {
	hub  *Hub
	addr linkAddr

	mu       sync.Mutex
	up, down linkShaper // uplink (client→fleet), downlink (fleet→client)
	queue    chan linkPacket
	closed   bool
	deadline time.Time

	// Crash fault injector, as on LinkConn but covering both
	// directions at once: a blackholed port's client reaches nobody and
	// receives nothing.
	blackholed bool

	// BlackholeDrops counts datagrams (both directions) eaten while
	// blackholed.
	BlackholeDrops int64
}

// linkShaper emulates one direction of a path: LinkConn's loss /
// serialization-queue / propagation / jitter model, reusable per
// direction. Callers synchronize access.
type linkShaper struct {
	cfg       LinkConfig
	rng       *sim.RNG
	busyUntil time.Time

	// Drops counts datagrams lost to the loss model; QueueDrops those
	// tail-dropped by the bandwidth queue.
	Drops      int64
	QueueDrops int64
}

// delay returns the delivery delay for an n-byte datagram written now,
// or ok=false if the loss model or queue limit drops it.
func (s *linkShaper) delay(n int, now time.Time) (time.Duration, bool) {
	if s.cfg.Loss > 0 && s.rng.Bool(s.cfg.Loss) {
		s.Drops++
		return 0, false
	}
	var txDelay time.Duration
	if s.cfg.Bandwidth > 0 {
		if s.busyUntil.Before(now) {
			s.busyUntil = now
		}
		if s.busyUntil.Sub(now) > s.cfg.MaxQueue {
			s.QueueDrops++
			return 0, false
		}
		tx := time.Duration(float64(n) / s.cfg.Bandwidth * float64(time.Second))
		s.busyUntil = s.busyUntil.Add(tx)
		txDelay = s.busyUntil.Sub(now)
	}
	d := txDelay + s.cfg.Delay
	if s.cfg.JitterStd > 0 {
		if j := time.Duration(s.rng.Norm(0, float64(s.cfg.JitterStd))); j > 0 {
			d += j
		}
	}
	return d, true
}

// Attach adds a client port named name (its source address as the
// fleet sees it) emulating cfg in both directions, with loss/jitter
// randomness derived from seed. Names must be unique while attached.
func (h *Hub) Attach(name string, cfg LinkConfig, seed uint64) (*HubPort, error) {
	cfg = cfg.withDefaults()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errLinkClosed
	}
	if name == "" || name == string(h.addr) {
		return nil, fmt.Errorf("netsim: bad hub port name %q", name)
	}
	if _, dup := h.ports[name]; dup {
		return nil, fmt.Errorf("netsim: hub port %q already attached", name)
	}
	rng := sim.NewRNG(seed)
	p := &HubPort{
		hub:   h,
		addr:  linkAddr(name),
		up:    linkShaper{cfg: cfg, rng: rng.Fork()},
		down:  linkShaper{cfg: cfg, rng: rng.Fork()},
		queue: make(chan linkPacket, 4096),
	}
	h.ports[name] = p
	return p, nil
}

// Detach removes the named port from the hub; subsequent fleet writes
// to its address are counted in DetachedDrops. The port itself stays
// usable only for Close.
func (h *Hub) Detach(name string) {
	h.mu.Lock()
	delete(h.ports, name)
	h.mu.Unlock()
}

// Addr returns the hub's address — the peer address every client
// port's traffic appears to come from and is sent to.
func (h *Hub) Addr() net.Addr { return h.addr }

// LocalAddr implements net.PacketConn.
func (h *Hub) LocalAddr() net.Addr { return h.addr }

// WriteTo implements net.PacketConn: the fleet writing one datagram
// down the named client's emulated link.
func (h *Hub) WriteTo(p []byte, addr net.Addr) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, errLinkClosed
	}
	port := h.ports[addr.String()]
	if port == nil {
		h.DetachedDrops++
		h.mu.Unlock()
		return len(p), nil // client gone: lost without a trace
	}
	h.mu.Unlock()

	port.mu.Lock()
	if port.closed {
		port.mu.Unlock()
		return len(p), nil
	}
	if port.blackholed {
		port.BlackholeDrops++
		port.mu.Unlock()
		return len(p), nil
	}
	d, ok := port.down.delay(len(p), time.Now())
	port.mu.Unlock()
	if !ok {
		return len(p), nil
	}
	pkt := linkPacket{data: append([]byte(nil), p...), from: h.addr}
	if d <= 0 {
		port.deliver(pkt)
	} else {
		time.AfterFunc(d, func() { port.deliver(pkt) })
	}
	return len(p), nil
}

// ReadFrom implements net.PacketConn honoring the read deadline.
// Datagrams carry the originating port's address, which is what lets a
// fleet demultiplex sessions.
func (h *Hub) ReadFrom(p []byte) (int, net.Addr, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, nil, errLinkClosed
	}
	deadline := h.deadline
	h.mu.Unlock()
	return readPacket(h.queue, deadline, p)
}

// deliver enqueues an uplink packet for the hub's reader; a full queue
// behaves like a receive-buffer drop.
func (h *Hub) deliver(pkt linkPacket) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	select {
	case h.queue <- pkt:
	default:
	}
}

// Close implements net.PacketConn: it closes the hub and every
// attached port (a fleet owns the conn it serves and closes it on
// shutdown, which must unblock all clients too).
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.queue)
	ports := make([]*HubPort, 0, len(h.ports))
	for _, p := range h.ports {
		ports = append(ports, p)
	}
	h.ports = make(map[string]*HubPort)
	h.mu.Unlock()
	for _, p := range ports {
		_ = p.Close()
	}
	return nil
}

// SetDeadline implements net.PacketConn (read side only; writes never
// block).
func (h *Hub) SetDeadline(t time.Time) error { return h.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (h *Hub) SetReadDeadline(t time.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.deadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn (no-op).
func (h *Hub) SetWriteDeadline(time.Time) error { return nil }

// Addr returns the port's address — the client's source address as the
// fleet sees it.
func (p *HubPort) Addr() net.Addr { return p.addr }

// LocalAddr implements net.PacketConn.
func (p *HubPort) LocalAddr() net.Addr { return p.addr }

// WriteTo implements net.PacketConn: the client writing one datagram
// up its emulated link to the hub.
func (p *HubPort) WriteTo(b []byte, addr net.Addr) (int, error) {
	if addr.String() != string(p.hub.addr) {
		return 0, errors.New("netsim: hub port peer is the hub")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errLinkClosed
	}
	if p.blackholed {
		p.BlackholeDrops++
		p.mu.Unlock()
		return len(b), nil // crashed device: lost without a trace
	}
	d, ok := p.up.delay(len(b), time.Now())
	p.mu.Unlock()
	if !ok {
		return len(b), nil
	}
	pkt := linkPacket{data: append([]byte(nil), b...), from: p.addr}
	if d <= 0 {
		p.hub.deliver(pkt)
	} else {
		time.AfterFunc(d, func() { p.hub.deliver(pkt) })
	}
	return len(b), nil
}

// ReadFrom implements net.PacketConn honoring the read deadline.
func (p *HubPort) ReadFrom(b []byte) (int, net.Addr, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, nil, errLinkClosed
	}
	deadline := p.deadline
	p.mu.Unlock()
	return readPacket(p.queue, deadline, b)
}

// deliver enqueues a downlink packet for the port's reader.
func (p *HubPort) deliver(pkt linkPacket) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	select {
	case p.queue <- pkt:
	default:
	}
}

// Blackhole makes the port eat every subsequent datagram in both
// directions — the client crashing without closing anything.
func (p *HubPort) Blackhole() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blackholed = true
}

// Restore lifts a blackhole; datagrams eaten while dark stay lost.
func (p *HubPort) Restore() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blackholed = false
}

// Close implements net.PacketConn and detaches the port from the hub.
func (p *HubPort) Close() error {
	p.hub.Detach(string(p.addr))
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	return nil
}

// SetDeadline implements net.PacketConn (read side only).
func (p *HubPort) SetDeadline(t time.Time) error { return p.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (p *HubPort) SetReadDeadline(t time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn (no-op).
func (p *HubPort) SetWriteDeadline(time.Time) error { return nil }

// readPacket blocks on queue until a packet, the deadline, or close.
func readPacket(queue chan linkPacket, deadline time.Time, p []byte) (int, net.Addr, error) {
	var timer <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, nil, &linkTimeoutError{}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case pkt, ok := <-queue:
		if !ok {
			return 0, nil, errLinkClosed
		}
		n := copy(p, pkt.data)
		return n, pkt.from, nil
	case <-timer:
		return 0, nil, &linkTimeoutError{}
	}
}

var _ net.PacketConn = (*Hub)(nil)
var _ net.PacketConn = (*HubPort)(nil)
