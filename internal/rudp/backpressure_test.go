package rudp

// Regression tests for receive-side flow control: message delivery must
// never block the injector. In demuxed (fleet) mode Inject runs on the
// one shared demux goroutine, and the pre-fix blocking send on the
// delivery channel meant a single session with a stalled consumer — for
// example one wedged in Send waiting for window space that only the
// demux goroutine's ACK delivery could free — deadlocked the entire
// listener. The fix refuses (without ACKing) data datagrams the Recv
// queue can't absorb, so the peer's retransmissions redeliver them once
// the application drains.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"
)

// dataPacket builds one wire data datagram whose payload is a single
// complete framed message.
func dataPacket(seq uint32, body []byte) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(body)))
	payload = append(payload, body...)
	return appendPacket(nil, typeData, seq, 0, payload)
}

func TestInjectNeverBlocksOnStalledConsumer(t *testing.T) {
	pcA, pcB := NewMemPair(0, 1)
	defer pcA.Close()
	defer pcB.Close()
	wheel := NewWheel(0, 8)
	defer wheel.Close()
	opts := DefaultOptions()
	opts.RecvQueue = 8
	c := NewDemuxed(pcA, pcB.Addr(), opts, wheel)
	defer c.Close()

	// Nobody calls Recv: the consumer is stalled. Inject three times the
	// queue bound; with the pre-fix blocking delivery this wedges on
	// datagram RecvQueue+1 forever.
	const total = 24
	injected := make(chan struct{})
	go func() {
		defer close(injected)
		for seq := uint32(0); seq < total; seq++ {
			c.Inject(dataPacket(seq, []byte(fmt.Sprintf("msg-%02d", seq))))
		}
	}()
	select {
	case <-injected:
	case <-time.After(10 * time.Second):
		t.Fatal("Inject blocked on a stalled consumer (demux deadlock)")
	}

	st := c.Stats()
	if want := int64(total - opts.RecvQueue); st.RecvQueueDrops != want {
		t.Fatalf("RecvQueueDrops = %d, want %d", st.RecvQueueDrops, want)
	}
	// Exactly the queue bound was accepted, in order; the rest were
	// refused before touching receive state (no ACK, no buffering).
	for i := 0; i < opts.RecvQueue; i++ {
		msg, err := c.Recv(time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%02d", i); string(msg) != want {
			t.Fatalf("recv %d = %q, want %q", i, msg, want)
		}
	}
	if _, err := c.Recv(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("queue should be empty after drain, got %v", err)
	}
}

func TestRecvBackpressureRetransmitRepairs(t *testing.T) {
	pcA, pcB := NewMemPair(0, 2)
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	opts.RecvQueue = 8
	a := New(pcA, pcB.Addr(), opts)
	b := New(pcB, pcA.Addr(), opts)
	defer a.Close()
	defer b.Close()

	// Pipeline far more messages than the receiver's queue absorbs
	// while its consumer sits idle, forcing refusals...
	const total = 64
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := a.Send([]byte(fmt.Sprintf("frame-%02d", i))); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()
	time.Sleep(100 * time.Millisecond)

	// ...then drain. Refused datagrams were never ACKed, so the sender's
	// retransmissions redeliver every one of them: backpressure, not
	// loss, and ordering is preserved throughout.
	for i := 0; i < total; i++ {
		msg, err := b.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d/%d: %v (refused datagrams never repaired?)", i, total, err)
		}
		if want := fmt.Sprintf("frame-%02d", i); string(msg) != want {
			t.Fatalf("recv %d = %q, want %q", i, msg, want)
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if drops := b.Stats().RecvQueueDrops; drops == 0 {
		t.Fatal("backpressure never engaged: RecvQueueDrops = 0")
	}
}
