package rudp

import (
	"sync"
	"time"
)

// DefaultWheelTick is the wheel's default timer resolution. It matches
// the promptness of the per-connection retransmit ticker it replaces
// (which woke every MinRTO/4 ≥ 1ms): an expiry is noticed within one
// tick of its deadline.
const DefaultWheelTick = time.Millisecond

// Wheel is a hashed timer wheel driving the retransmission timers of
// many connections from a single goroutine. A fleet of demuxed Conns
// (NewDemuxed) shares one Wheel instead of running one retransmitLoop
// ticker each — with a thousand sessions that is one timer goroutine
// waking per tick rather than a thousand waking every MinRTO/4
// forever, whether or not any data is in flight.
//
// Scheduling is earliest-wins and at-or-after: a connection occupies at
// most one slot, keyed by the absolute tick just past its deadline, and
// re-arming with a later deadline is a no-op (the early firing simply
// observes an unexpired timer and re-schedules itself for the real
// deadline). Connections with no timer armed occupy no slot at all, so
// an idle fleet costs the wheel nothing but the tick.
type Wheel struct {
	tick  time.Duration
	start time.Time

	mu sync.Mutex
	// slots[i] holds the connections scheduled for any absolute tick t
	// with t % len(slots) == i (the "hashed" part: far-future deadlines
	// share a slot with near ones and are skipped until their tick
	// comes around). The map value is the connection's absolute tick.
	slots []map[*Conn]int64
	sched map[*Conn]int64 // conn -> absolute tick it occupies
	cur   int64           // last absolute tick already fired

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewWheel starts a timer wheel with the given resolution and slot
// count (rounded up to a power of two). tick <= 0 selects
// DefaultWheelTick; slots <= 0 selects 512. Close must be called to
// stop its goroutine.
func NewWheel(tick time.Duration, slots int) *Wheel {
	if tick <= 0 {
		tick = DefaultWheelTick
	}
	if slots <= 0 {
		slots = 512
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	w := &Wheel{
		tick:  tick,
		start: time.Now(),
		slots: make([]map[*Conn]int64, n),
		sched: make(map[*Conn]int64),
		done:  make(chan struct{}),
	}
	for i := range w.slots {
		w.slots[i] = make(map[*Conn]int64)
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Close stops the wheel goroutine. Connections still registered are
// simply no longer driven; close them first.
func (w *Wheel) Close() {
	w.closeOnce.Do(func() {
		close(w.done)
		w.wg.Wait()
	})
}

// Len reports how many connections currently have a timer scheduled —
// the wheel's live footprint, for tests and stats.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sched)
}

// Tick returns the wheel's resolution.
func (w *Wheel) Tick() time.Duration { return w.tick }

// tickIndex maps an instant to an absolute tick number.
func (w *Wheel) tickIndex(t time.Time) int64 {
	d := t.Sub(w.start)
	if d < 0 {
		d = 0
	}
	return int64(d / w.tick)
}

// schedule arms c's next expiry check at or just after deadline.
// Earliest wins: if c is already scheduled sooner (or at the same
// tick), nothing changes — the earlier firing re-schedules for the
// true deadline if the timer hasn't actually expired yet.
func (w *Wheel) schedule(c *Conn, deadline time.Time) {
	idx := w.tickIndex(deadline) + 1 // first tick past the deadline
	w.mu.Lock()
	if idx <= w.cur {
		idx = w.cur + 1
	}
	if old, ok := w.sched[c]; ok {
		if old <= idx {
			w.mu.Unlock()
			return
		}
		delete(w.slots[old&int64(len(w.slots)-1)], c)
	}
	w.sched[c] = idx
	w.slots[idx&int64(len(w.slots)-1)][c] = idx
	w.mu.Unlock()
}

// remove drops c from the wheel (connection closing).
func (w *Wheel) remove(c *Conn) {
	w.mu.Lock()
	if old, ok := w.sched[c]; ok {
		delete(w.sched, c)
		delete(w.slots[old&int64(len(w.slots)-1)], c)
	}
	w.mu.Unlock()
}

func (w *Wheel) run() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.tick)
	defer ticker.Stop()
	var fired []*Conn
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		target := w.tickIndex(now)
		fired = fired[:0]
		w.mu.Lock()
		// Catch up every tick the ticker may have coalesced; entries
		// hashed into a slot for a later revolution stay put.
		for w.cur < target {
			w.cur++
			slot := w.slots[w.cur&int64(len(w.slots)-1)]
			for c, at := range slot {
				if at == w.cur {
					delete(slot, c)
					delete(w.sched, c)
					fired = append(fired, c)
				}
			}
		}
		w.mu.Unlock()
		// Expiry processing runs outside the wheel lock: timerCheck
		// takes the connection's own lock and may write to the socket.
		for _, c := range fired {
			if next := c.timerCheck(now); !next.IsZero() {
				w.schedule(c, next)
			}
		}
	}
}
