// Regression test for the stray-datagram bug: rudp.Conn.readLoop used
// to discard the sender address returned by ReadFrom, so ANY datagram
// landing on the socket — spoofed, misrouted, or from a previous
// session — was processed as if the registered peer had sent it and
// could corrupt ACK/sequence state. netsim's InjectFrom plays the
// off-path attacker here.
package rudp_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/rudp"
)

// forgeDataPacket builds a valid-looking rudp DATA datagram carrying
// one complete uvarint-framed message, byte-for-byte what a peer's
// first Send would put on the wire. The wire constants are spelled out
// on purpose: the test asserts the transport rejects a well-formed
// packet from the wrong source, not a malformed one.
func forgeDataPacket(seq uint32, msg string) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(msg)))
	payload = append(payload, msg...)
	pkt := make([]byte, 10+len(payload))
	pkt[0] = 0xB7 // protocol magic
	pkt[1] = 1    // typeData
	binary.BigEndian.PutUint32(pkt[2:6], seq)
	binary.BigEndian.PutUint32(pkt[6:10], 0) // timestamp echo
	copy(pkt[10:], payload)
	return pkt
}

func TestStrayDatagramViaNetsim(t *testing.T) {
	la, lb := netsim.NewLinkPair(netsim.LinkConfig{Delay: time.Millisecond}, 31)
	server := rudp.New(la, lb.Addr(), rudp.DefaultOptions())
	client := rudp.New(lb, la.Addr(), rudp.DefaultOptions())
	defer server.Close()
	defer client.Close()

	forged := forgeDataPacket(0, "evil")
	if !rudp.IsProtocolDatagram(forged) {
		t.Fatal("forged packet must look like a real protocol datagram, or the test proves nothing")
	}
	// The off-path attacker lands the forgery on the server's socket
	// before the real client says anything. It claims the same seq 0 the
	// client's first datagram will use: processed, it would poison the
	// receive window and turn the real datagram into a duplicate.
	attacker := &net.UDPAddr{IP: net.IPv4(198, 51, 100, 7), Port: 4444}
	la.InjectFrom(attacker, forged)
	time.Sleep(20 * time.Millisecond)

	if err := client.Send([]byte("real")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("real client's message lost after stray injection: %v", err)
	}
	if string(got) != "real" {
		t.Fatalf("server delivered %q: forged off-path datagram entered the stream", got)
	}
	st := server.Stats()
	if st.StrayPackets == 0 {
		t.Fatal("stray datagram not counted in Stats.StrayPackets")
	}
	if st.Duplicates != 0 {
		t.Fatalf("forged datagram reached sequence accounting: %d duplicates", st.Duplicates)
	}
}
