// Package rudp implements the lightweight reliable transport GBooster
// layers over UDP (paper §IV-B). TCP's retransmission machinery adds
// tens of milliseconds of inherent delay, so the paper ships graphics
// commands over UDP with application-layer reliability in the spirit of
// UDT: sequence numbers, cumulative acknowledgements, timeout
// retransmission, and in-order delivery. On top of the ordered byte
// flow, Conn frames length-prefixed messages, so arbitrarily large
// command batches and encoded frames fragment transparently across
// datagrams.
//
// Conn runs over any net.PacketConn: real UDP sockets in the demo
// binaries, or the in-memory lossy pair from this package in tests and
// simulations.
package rudp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Protocol constants.
const (
	magicByte  = 0xB7
	typeData   = 1
	typeAck    = 2
	headerSize = 6 // magic, type, seq uint32
)

// Errors.
var (
	ErrClosed      = errors.New("rudp: connection closed")
	ErrMsgTooLarge = errors.New("rudp: message exceeds limit")
	ErrTimeout     = errors.New("rudp: receive timeout")
)

// Options tunes a Conn.
type Options struct {
	// RTO is the retransmission timeout.
	RTO time.Duration
	// MaxPayload bounds one datagram's payload.
	MaxPayload int
	// Window bounds unacknowledged datagrams in flight.
	Window int
	// MaxMessage bounds one framed message.
	MaxMessage int
}

// DefaultOptions returns production defaults: a 20 ms RTO (LAN-scale,
// far below TCP's delayed-ACK floor the paper complains about), 1200-
// byte payloads (under typical WiFi MTU), and a 256-datagram window.
func DefaultOptions() Options {
	return Options{
		RTO:        20 * time.Millisecond,
		MaxPayload: 1200,
		Window:     256,
		MaxMessage: 64 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.RTO <= 0 {
		o.RTO = d.RTO
	}
	if o.MaxPayload <= 0 || o.MaxPayload > 60000 {
		o.MaxPayload = d.MaxPayload
	}
	if o.Window <= 0 {
		o.Window = d.Window
	}
	if o.MaxMessage <= 0 {
		o.MaxMessage = d.MaxMessage
	}
	return o
}

// Stats counts transport activity.
type Stats struct {
	DataSent   int64
	DataResent int64
	AcksSent   int64
	BytesSent  int64
	MsgsSent   int64
	MsgsRecv   int64
	Duplicates int64
	OutOfOrder int64
}

type pending struct {
	payload  []byte
	lastSent time.Time
}

// Conn is one reliable, ordered message channel to a single peer.
type Conn struct {
	pc   net.PacketConn
	peer net.Addr
	opts Options

	mu       sync.Mutex
	sendSeq  uint32
	unacked  map[uint32]*pending
	sendSlot *sync.Cond // signalled when window space frees

	recvNext uint32
	recvBuf  map[uint32][]byte
	stream   []byte

	stats Stats

	msgs      chan []byte
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	closeErr  error
}

// New wraps pc into a reliable message channel to peer and starts the
// receive and retransmit loops. Close must be called to release them.
func New(pc net.PacketConn, peer net.Addr, opts Options) *Conn {
	c := &Conn{
		pc:      pc,
		peer:    peer,
		opts:    opts.withDefaults(),
		unacked: make(map[uint32]*pending),
		recvBuf: make(map[uint32][]byte),
		msgs:    make(chan []byte, 256),
		done:    make(chan struct{}),
	}
	c.sendSlot = sync.NewCond(&c.mu)
	c.wg.Add(2)
	go c.readLoop()
	go c.retransmitLoop()
	return c
}

// Close shuts the connection down and waits for its goroutines. The
// underlying PacketConn is closed too.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.closeErr = c.pc.Close()
		c.mu.Lock()
		c.sendSlot.Broadcast()
		c.mu.Unlock()
		c.wg.Wait()
	})
	return c.closeErr
}

// Stats returns a snapshot of transport counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Send frames msg (uvarint length prefix) and ships it reliably. It
// blocks while the send window is full.
func (c *Conn) Send(msg []byte) error {
	if len(msg) > c.opts.MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrMsgTooLarge, len(msg))
	}
	framed := binary.AppendUvarint(nil, uint64(len(msg)))
	framed = append(framed, msg...)
	for off := 0; off < len(framed); off += c.opts.MaxPayload {
		end := off + c.opts.MaxPayload
		if end > len(framed) {
			end = len(framed)
		}
		if err := c.sendDatagram(framed[off:end]); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.stats.MsgsSent++
	c.mu.Unlock()
	return nil
}

func (c *Conn) sendDatagram(payload []byte) error {
	c.mu.Lock()
	for len(c.unacked) >= c.opts.Window {
		if c.isClosed() {
			c.mu.Unlock()
			return ErrClosed
		}
		c.sendSlot.Wait()
	}
	if c.isClosed() {
		c.mu.Unlock()
		return ErrClosed
	}
	seq := c.sendSeq
	c.sendSeq++
	p := &pending{payload: append([]byte(nil), payload...), lastSent: time.Now()}
	c.unacked[seq] = p
	c.stats.DataSent++
	c.stats.BytesSent += int64(headerSize + len(payload))
	c.mu.Unlock()

	return c.writePacket(typeData, seq, payload)
}

func (c *Conn) writePacket(ptype byte, seq uint32, payload []byte) error {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = magicByte
	buf[1] = ptype
	binary.BigEndian.PutUint32(buf[2:6], seq)
	copy(buf[headerSize:], payload)
	_, err := c.pc.WriteTo(buf, c.peer)
	if err != nil && !c.isClosed() {
		return fmt.Errorf("rudp: write: %w", err)
	}
	return nil
}

func (c *Conn) isClosed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Recv returns the next complete message, blocking up to timeout
// (zero means block until close).
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case msg, ok := <-c.msgs:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-timer:
		return nil, ErrTimeout
	case <-c.done:
		// Drain anything already queued before reporting closure.
		select {
		case msg, ok := <-c.msgs:
			if ok {
				return msg, nil
			}
		default:
		}
		return nil, ErrClosed
	}
}

func (c *Conn) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for !c.isClosed() {
		_ = c.pc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return // closed or fatal
		}
		if n < headerSize || buf[0] != magicByte {
			continue
		}
		ptype := buf[1]
		seq := binary.BigEndian.Uint32(buf[2:6])
		payload := buf[headerSize:n]
		switch ptype {
		case typeData:
			c.handleData(seq, payload)
		case typeAck:
			c.handleAck(seq)
		}
	}
}

func (c *Conn) handleData(seq uint32, payload []byte) {
	c.mu.Lock()
	switch {
	case seq < c.recvNext:
		c.stats.Duplicates++
	case seq == c.recvNext:
		c.stream = append(c.stream, payload...)
		c.recvNext++
		for {
			next, ok := c.recvBuf[c.recvNext]
			if !ok {
				break
			}
			delete(c.recvBuf, c.recvNext)
			c.stream = append(c.stream, next...)
			c.recvNext++
		}
	default:
		if _, dup := c.recvBuf[seq]; dup {
			c.stats.Duplicates++
		} else {
			c.recvBuf[seq] = append([]byte(nil), payload...)
			c.stats.OutOfOrder++
		}
	}
	ackSeq := c.recvNext // cumulative: everything below is delivered
	c.stats.AcksSent++
	msgs := c.extractMessagesLocked()
	c.mu.Unlock()

	_ = c.writePacket(typeAck, ackSeq, nil)
	for _, m := range msgs {
		select {
		case c.msgs <- m:
		case <-c.done:
			return
		}
	}
}

// extractMessagesLocked parses complete length-prefixed messages from
// the assembled stream. Caller holds mu.
func (c *Conn) extractMessagesLocked() [][]byte {
	var out [][]byte
	for {
		msgLen, n := binary.Uvarint(c.stream)
		if n <= 0 || uint64(len(c.stream)-n) < msgLen {
			break
		}
		if msgLen > uint64(c.opts.MaxMessage) {
			// Corrupt framing: drop the stream to resync rather than
			// allocate unboundedly.
			c.stream = nil
			break
		}
		msg := append([]byte(nil), c.stream[n:n+int(msgLen)]...)
		c.stream = c.stream[n+int(msgLen):]
		out = append(out, msg)
		c.stats.MsgsRecv++
	}
	return out
}

func (c *Conn) handleAck(ackSeq uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := false
	for seq := range c.unacked {
		if seq < ackSeq {
			delete(c.unacked, seq)
			freed = true
		}
	}
	if freed {
		c.sendSlot.Broadcast()
	}
}

func (c *Conn) retransmitLoop() {
	defer c.wg.Done()
	interval := c.opts.RTO / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type resend struct {
			seq     uint32
			payload []byte
		}
		var due []resend
		c.mu.Lock()
		for seq, p := range c.unacked {
			if now.Sub(p.lastSent) >= c.opts.RTO {
				p.lastSent = now
				c.stats.DataResent++
				c.stats.BytesSent += int64(headerSize + len(p.payload))
				due = append(due, resend{seq: seq, payload: p.payload})
			}
		}
		c.mu.Unlock()
		for _, r := range due {
			_ = c.writePacket(typeData, r.seq, r.payload)
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Group fans one message out to several connections — the stand-in for
// the UDP multicast the paper uses to replicate state-mutating
// commands to every service device with one logical transmission
// (§VI-B). SendAll returns the first error encountered but attempts
// every member.
type Group struct {
	conns []*Conn
}

// NewGroup builds a multicast group over the given connections.
func NewGroup(conns ...*Conn) *Group {
	return &Group{conns: append([]*Conn(nil), conns...)}
}

// Len returns group size.
func (g *Group) Len() int { return len(g.conns) }

// SendAll delivers msg to every member.
func (g *Group) SendAll(msg []byte) error {
	var firstErr error
	for _, c := range g.conns {
		if err := c.Send(msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
