// Package rudp implements the lightweight reliable transport GBooster
// layers over UDP (paper §IV-B). TCP's retransmission machinery adds
// tens of milliseconds of inherent delay, so the paper ships graphics
// commands over UDP with application-layer reliability in the spirit of
// UDT: sequence numbers, cumulative acknowledgements, timeout
// retransmission, and in-order delivery. On top of the ordered byte
// flow, Conn frames length-prefixed messages, so arbitrarily large
// command batches and encoded frames fragment transparently across
// datagrams.
//
// # Loss recovery
//
// Conn adapts its retransmission timeout to the path instead of firing
// on a fixed timer. The machinery borrows the proven TCP mechanisms:
//
//   - RTT sampling (RFC 7323 flavor): every data datagram carries a
//     microsecond send timestamp, and each ACK echoes the timestamp of
//     the datagram that triggered it. A sample is therefore pinned to
//     one specific transmission, stays unambiguous across
//     retransmissions (subsuming Karn's rule), and excludes
//     head-of-line blocking behind a loss. A Karn-filtered send-time
//     fallback covers ACKs without an echo.
//   - Estimator (RFC 6298): SRTT and RTTVAR follow the standard EWMA
//     update (gains 1/8 and 1/4); RTO = SRTT + 4·RTTVAR, clamped to
//     [MinRTO, MaxRTO].
//   - A single retransmission timer (RFC 6298 §5) covers only the
//     oldest outstanding datagram and restarts whenever an ACK
//     acknowledges new data. On expiry just that datagram is resent
//     and the timer backs off exponentially (capped at MaxRTO), so a
//     dead path quiesces instead of storming and one lost datagram
//     never triggers a whole-window resend.
//   - Three duplicate cumulative ACKs trigger a fast retransmit of the
//     datagram the receiver is stalled on (once per hole), recovering
//     a single loss in roughly one RTT instead of a full RTO.
//   - ACKs carry a 64-bit selective-acknowledgment bitmap of the
//     out-of-order datagrams buffered beyond the cumulative ACK.
//     SACKed data is never retransmitted, and any datagram passed by a
//     SACKed later one for more than a smoothed RTT (a RACK-style
//     reordering guard) is repaired immediately — every hole in the
//     window recovers in one round trip rather than one hole per RTT.
//   - During a recovery episode, partial cumulative ACKs (RFC 6582,
//     NewReno) pinpoint the next hole, which is resent without waiting
//     for another dup-ACK burst or timeout.
//
// Setting Options.FixedRTO reverts to the pre-adaptive transport — a
// fixed per-datagram timer, no backoff, no fast retransmit, no SACK
// processing — as the A/B baseline for the loss soak benchmarks.
//
// Conn runs over any net.PacketConn: real UDP sockets in the demo
// binaries, the in-memory lossy pair from this package, or netsim's
// delay/jitter/bandwidth link emulator in soak tests.
package rudp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Protocol constants.
const (
	magicByte  = 0xB7
	typeData   = 1
	typeAck    = 2
	headerSize = 10 // magic, type, seq uint32, timestamp uint32

	// dupAckThreshold is the number of duplicate cumulative ACKs that
	// triggers a fast retransmit (TCP's classic threshold).
	dupAckThreshold = 3
)

// Errors.
var (
	ErrClosed      = errors.New("rudp: connection closed")
	ErrMsgTooLarge = errors.New("rudp: message exceeds limit")
	ErrTimeout     = errors.New("rudp: receive timeout")
)

// Options tunes a Conn.
type Options struct {
	// RTO is the initial retransmission timeout, used until the first
	// RTT sample arrives (and permanently when FixedRTO is set).
	RTO time.Duration
	// MinRTO / MaxRTO clamp the adaptive timeout. MaxRTO also caps the
	// exponential backoff.
	MinRTO time.Duration
	MaxRTO time.Duration
	// FixedRTO disables RTT estimation, exponential backoff, and fast
	// retransmit, retransmitting purely on the fixed RTO timer. It
	// exists as the baseline for transport A/B tests.
	FixedRTO bool
	// MaxPayload bounds one datagram's payload.
	MaxPayload int
	// Window bounds unacknowledged datagrams in flight.
	Window int
	// MaxMessage bounds one framed message.
	MaxMessage int
	// RecvQueue bounds complete messages queued for Recv. When the
	// application stops draining, further data datagrams are refused
	// before they mutate receive state — unACKed, so the peer's
	// retransmission redelivers them once the queue drains and its send
	// window throttles it meanwhile. Receive-side flow control, not
	// loss: nothing delivered is ever dropped.
	RecvQueue int
}

// DefaultOptions returns production defaults: a 20 ms initial RTO
// (LAN-scale, far below TCP's delayed-ACK floor the paper complains
// about) that adapts to the measured path, 1200-byte payloads (under
// typical WiFi MTU), and a 256-datagram window.
func DefaultOptions() Options {
	return Options{
		RTO:        20 * time.Millisecond,
		MinRTO:     5 * time.Millisecond,
		MaxRTO:     2 * time.Second,
		MaxPayload: 1200,
		Window:     256,
		MaxMessage: 64 << 20,
		RecvQueue:  256,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.RTO <= 0 {
		o.RTO = d.RTO
	}
	if o.MinRTO <= 0 {
		o.MinRTO = d.MinRTO
	}
	if o.MaxRTO <= 0 {
		o.MaxRTO = d.MaxRTO
	}
	if o.MaxRTO < o.MinRTO {
		o.MaxRTO = o.MinRTO
	}
	if o.MaxPayload <= 0 || o.MaxPayload > 60000 {
		o.MaxPayload = d.MaxPayload
	}
	if o.Window <= 0 {
		o.Window = d.Window
	}
	if o.MaxMessage <= 0 {
		o.MaxMessage = d.MaxMessage
	}
	if o.RecvQueue <= 0 {
		o.RecvQueue = d.RecvQueue
	}
	return o
}

// Stats counts transport activity and snapshots loss-recovery health.
type Stats struct {
	DataSent   int64
	DataResent int64
	AcksSent   int64
	BytesSent  int64
	MsgsSent   int64
	MsgsRecv   int64
	Duplicates int64
	OutOfOrder int64
	// FastResent / TimeoutResent split DataResent by trigger.
	FastResent    int64
	TimeoutResent int64
	// FramingErrors counts corrupt length prefixes that forced a stream
	// resync on the receive side.
	FramingErrors int64
	// StrayPackets counts datagrams dropped because their source
	// address did not match the registered peer. Without this check any
	// off-path datagram arriving on the socket would be processed as if
	// it came from the peer and could corrupt ACK/sequence state.
	StrayPackets int64
	// RecvQueueDrops counts data datagrams refused because the Recv
	// queue was full (Options.RecvQueue). Refused datagrams are not
	// ACKed, so the peer retransmits them — flow control pushing back
	// on a sender outpacing the application, not data loss.
	RecvQueueDrops int64

	// Gauges sampled at Stats() time.

	// SRTT / RTTVar / RTO are the estimator's current state. SRTT is
	// zero until the first RTT sample.
	SRTT   time.Duration
	RTTVar time.Duration
	RTO    time.Duration
	// MinSRTT is the lowest smoothed RTT observed over the connection's
	// lifetime — a baseline for congestion detection: SRTT well above
	// MinSRTT means queueing delay, not path length.
	MinSRTT time.Duration
	// WindowOccupancy is the number of datagrams currently in flight;
	// WindowLimit the configured cap.
	WindowOccupancy int
	WindowLimit     int
}

// ResendRate is the fraction of data transmissions that were
// retransmissions — the transport's loss-recovery overhead.
func (s Stats) ResendRate() float64 {
	total := s.DataSent + s.DataResent
	if total == 0 {
		return 0
	}
	return float64(s.DataResent) / float64(total)
}

// seqBefore reports whether a precedes b in uint32 serial-number
// arithmetic (RFC 1982), so comparisons survive sequence wraparound
// after 2^32 datagrams.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

type pending struct {
	payload  []byte
	lastSent time.Time
	rtx      int // retransmission count (Karn's rule + backoff exponent)
}

// pktBufPool recycles full-datagram scratch buffers (header + payload)
// across connections. Resend and ACK paths build their packets here so
// no buffer built under c.mu is ever written to the socket while
// aliasing a pending whose storage a concurrent ACK may recycle.
var pktBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, headerSize+2048)
	return &b
}}

// appendPacket appends one wire datagram to dst.
func appendPacket(dst []byte, ptype byte, seq, ts uint32, payload []byte) []byte {
	dst = append(dst, magicByte, ptype)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, ts)
	return append(dst, payload...)
}

// rsPkt is one retransmission staged under mu: the complete datagram
// bytes (pooled) plus the stats accounting to apply if the write lands.
type rsPkt struct {
	buf *[]byte
}

// IsProtocolDatagram reports whether b looks like a rudp wire datagram:
// a complete header carrying the protocol magic and a known packet
// type. Accept paths use it to avoid binding a session to the sender of
// a stray non-protocol datagram, and demultiplexers use it to gate
// session admission.
func IsProtocolDatagram(b []byte) bool {
	return len(b) >= headerSize && b[0] == magicByte &&
		(b[1] == typeData || b[1] == typeAck)
}

// Conn is one reliable, ordered message channel to a single peer.
type Conn struct {
	pc   net.PacketConn
	peer net.Addr
	opts Options

	// peerStr caches peer.String() for source-address validation in
	// readLoop, so the comparison fall-back allocates nothing per
	// datagram on the expected side.
	peerStr string
	// ownsSocket: Close closes pc. False in demuxed mode, where pc is a
	// listener shared by many connections and owned by the demultiplexer.
	ownsSocket bool
	// wheel, when non-nil, drives this connection's retransmission
	// timer instead of a dedicated retransmitLoop goroutine.
	wheel *Wheel

	// sendMu serializes whole-message framing: fragments of one Send
	// must occupy a contiguous run of the sequence space or the
	// receiver's length-prefixed stream is corrupted. frameBuf and
	// sendPkt are the send path's reusable scratch (guarded by sendMu),
	// so a steady stream of Sends allocates nothing.
	sendMu   sync.Mutex
	frameBuf []byte
	sendPkt  []byte

	mu       sync.Mutex
	sendSeq  uint32
	unacked  map[uint32]*pending
	pendFree []*pending // recycled pendings, buffers kept (guarded by mu)
	sendSlot *sync.Cond // signalled when window space frees

	// RFC 6298 estimator state.
	srtt    time.Duration
	rttvar  time.Duration
	rto     time.Duration
	minSRTT time.Duration // lowest srtt ever; congestion baseline
	rttInit bool

	// Fast-retransmit state: the last cumulative ACK seen, how many
	// exact duplicates of it arrived while data was outstanding, and
	// which hole was already fast-retransmitted (each hole is fast-
	// retransmitted at most once; a re-loss falls back to the RTO).
	lastAck      uint32
	dupAcks      int
	fastRtxSeq   uint32
	fastRtxValid bool

	// Single retransmission timer (RFC 6298 §5): it covers only the
	// oldest outstanding datagram and restarts whenever an ACK
	// acknowledges new data. Trailing in-flight datagrams — usually
	// already buffered at the receiver — are never individually timed
	// out, so one lost datagram can't trigger a whole-window resend.
	// Zero means unarmed. rtxBackoff is the live backoff exponent,
	// reset on ACK progress. (The FixedRTO baseline instead keeps the
	// legacy per-datagram timers.)
	timerDeadline time.Time
	rtxBackoff    int

	// NewReno-style recovery episode (RFC 6582): after any
	// retransmission, recoverSeq remembers the highest sequence
	// outstanding at that moment. Until the cumulative ACK passes it,
	// each "partial ACK" — one that advances but leaves older data
	// unacked — pinpoints the next hole, which is retransmitted
	// immediately rather than after another RTO. Multiple losses in
	// one window then repair at one hole per RTT.
	recoverSeq   uint32
	recoverValid bool

	recvNext uint32
	recvBuf  map[uint32][]byte
	// stream is the in-order reassembly buffer; streamOff is how much of
	// it extractMessagesLocked has already consumed. Keeping consumed
	// bytes in place (and compacting only when the dead prefix dominates)
	// lets the buffer's capacity be reused across messages instead of
	// re-allocated every time the slice header used to slide forward.
	stream    []byte
	streamOff int
	// msgFree recycles delivered message buffers returned via Release,
	// so a steady Recv→process→Release loop allocates nothing. Guarded
	// by mu; bounded by Options.RecvQueue.
	msgFree [][]byte

	// recvQ/recvHead queue complete messages for Recv (guarded by mu).
	// Delivery appends and never blocks — essential in demuxed mode,
	// where Inject runs on the shared demux goroutine and blocking it
	// would wedge every session on the listener. recvNotify (capacity 1)
	// wakes a parked Recv; a set flag covers any number of queued
	// messages. The queue is bounded by Options.RecvQueue via refusal in
	// handleData, not by blocking here.
	recvQ      [][]byte
	recvHead   int
	recvNotify chan struct{}

	// epoch anchors the 32-bit microsecond timestamps data packets
	// carry; ACKs echo the timestamp of the datagram that triggered
	// them, so RTT samples stay clean even when a cumulative ACK also
	// covers datagrams that sat blocked behind a loss.
	epoch time.Time

	stats Stats

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	closeErr  error
}

// New wraps pc into a reliable message channel to peer and starts the
// receive and retransmit loops. Close must be called to release them.
func New(pc net.PacketConn, peer net.Addr, opts Options) *Conn {
	c := newConn(pc, peer, opts)
	c.ownsSocket = true
	c.wg.Add(2)
	go c.readLoop()
	go c.retransmitLoop()
	return c
}

// NewDemuxed builds a connection in injection-driven mode for a shared
// listener: it runs NO goroutines of its own. Inbound datagrams arrive
// via Inject from the demultiplexer that owns pc (which MUST validate
// the source address before injecting — Inject trusts its caller), and
// the retransmission timer is driven by wheel. Close releases the
// connection's wheel slot but leaves pc open: the listener is shared
// by every session demuxed onto it.
func NewDemuxed(pc net.PacketConn, peer net.Addr, opts Options, wheel *Wheel) *Conn {
	c := newConn(pc, peer, opts)
	c.wheel = wheel
	return c
}

func newConn(pc net.PacketConn, peer net.Addr, opts Options) *Conn {
	c := &Conn{
		pc:      pc,
		peer:    peer,
		peerStr: peer.String(),
		opts:    opts.withDefaults(),
		unacked:    make(map[uint32]*pending),
		recvBuf:    make(map[uint32][]byte),
		epoch:      time.Now(),
		recvNotify: make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	c.rto = c.opts.RTO
	c.sendSlot = sync.NewCond(&c.mu)
	return c
}

// Close shuts the connection down and waits for its goroutines. A
// connection that owns its socket (New) closes the underlying
// PacketConn too; a demuxed connection leaves the shared listener open
// and deregisters from its timer wheel instead.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		if c.ownsSocket {
			c.closeErr = c.pc.Close()
		}
		if c.wheel != nil {
			c.wheel.remove(c)
		}
		c.mu.Lock()
		c.sendSlot.Broadcast()
		c.mu.Unlock()
		c.wg.Wait()
	})
	return c.closeErr
}

// Stats returns a snapshot of transport counters and health gauges.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.SRTT = c.srtt
	st.RTTVar = c.rttvar
	st.RTO = c.currentRTOLocked()
	st.MinSRTT = c.minSRTT
	st.WindowOccupancy = len(c.unacked)
	st.WindowLimit = c.opts.Window
	return st
}

// currentRTOLocked returns the effective base RTO. Caller holds mu.
func (c *Conn) currentRTOLocked() time.Duration {
	if c.opts.FixedRTO || !c.rttInit {
		return c.opts.RTO
	}
	return c.rto
}

// Send frames msg (uvarint length prefix) and ships it reliably. It
// blocks while the send window is full. Concurrent Sends are safe: each
// message's fragments occupy a contiguous sequence range. msg is fully
// copied (into the framing scratch and the per-datagram retransmit
// buffers) before Send returns, so the caller may reuse it immediately.
func (c *Conn) Send(msg []byte) error {
	if len(msg) > c.opts.MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrMsgTooLarge, len(msg))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	framed := binary.AppendUvarint(c.frameBuf[:0], uint64(len(msg)))
	framed = append(framed, msg...)
	c.frameBuf = framed
	for off := 0; off < len(framed); off += c.opts.MaxPayload {
		end := off + c.opts.MaxPayload
		if end > len(framed) {
			end = len(framed)
		}
		if err := c.sendDatagram(framed[off:end]); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.stats.MsgsSent++
	c.mu.Unlock()
	return nil
}

// getPendingLocked / putPendingLocked recycle retransmit-window slots
// and their payload buffers. Caller holds mu.
func (c *Conn) getPendingLocked() *pending {
	if n := len(c.pendFree); n > 0 {
		p := c.pendFree[n-1]
		c.pendFree = c.pendFree[:n-1]
		return p
	}
	return &pending{}
}

func (c *Conn) putPendingLocked(p *pending) {
	p.payload = p.payload[:0]
	p.rtx = 0
	c.pendFree = append(c.pendFree, p)
}

func (c *Conn) sendDatagram(payload []byte) error {
	c.mu.Lock()
	for len(c.unacked) >= c.opts.Window {
		if c.isClosed() {
			c.mu.Unlock()
			return ErrClosed
		}
		c.sendSlot.Wait()
	}
	if c.isClosed() {
		c.mu.Unlock()
		return ErrClosed
	}
	seq := c.sendSeq
	c.sendSeq++
	now := time.Now()
	// The transport's own copy of the payload: rudp retains it only
	// while the datagram sits in the retransmit window, and the buffer
	// is recycled once the ACK covers it.
	p := c.getPendingLocked()
	p.payload = append(p.payload[:0], payload...)
	p.lastSent = now
	c.unacked[seq] = p
	var armed time.Time
	if c.timerDeadline.IsZero() {
		c.timerDeadline = now.Add(c.backoffRTOLocked(c.rtxBackoff))
		armed = c.timerDeadline
	}
	c.mu.Unlock()
	if c.wheel != nil && !armed.IsZero() {
		c.wheel.schedule(c, armed)
	}

	// sendDatagram runs only under sendMu (from Send), so the packet
	// scratch is race-free without holding mu across the socket write.
	c.sendPkt = appendPacket(c.sendPkt[:0], typeData, seq, c.nowTS(), payload)
	if _, err := c.pc.WriteTo(c.sendPkt, c.peer); err != nil && !c.isClosed() {
		return fmt.Errorf("rudp: write: %w", err)
	}
	c.mu.Lock()
	c.stats.DataSent++
	c.stats.BytesSent += int64(headerSize + len(payload))
	c.mu.Unlock()
	return nil
}

// nowTS returns the connection's 32-bit microsecond clock. Wraparound
// (~71 min) is harmless: samples are uint32 differences.
func (c *Conn) nowTS() uint32 {
	return uint32(time.Since(c.epoch) / time.Microsecond)
}

// writePacket builds and writes one datagram through the shared buffer
// pool. Callers on the data hot path (sendDatagram) use their own
// scratch instead; this covers the ACK and accept paths. Every in-tree
// PacketConn copies the buffer before WriteTo returns, which is what
// makes recycling it immediately safe.
func (c *Conn) writePacket(ptype byte, seq, ts uint32, payload []byte) error {
	bp := pktBufPool.Get().(*[]byte)
	buf := appendPacket((*bp)[:0], ptype, seq, ts, payload)
	_, err := c.pc.WriteTo(buf, c.peer)
	*bp = buf[:0]
	pktBufPool.Put(bp)
	if err != nil && !c.isClosed() {
		return fmt.Errorf("rudp: write: %w", err)
	}
	return nil
}

func (c *Conn) isClosed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Recv returns the next complete message, blocking up to timeout
// (zero means block until close). After Close, queued messages drain
// before ErrClosed is reported.
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	for {
		c.mu.Lock()
		msg, ok := c.popRecvLocked()
		more := c.recvHead < len(c.recvQ)
		c.mu.Unlock()
		if ok {
			if more {
				// Re-set the notify flag for any other waiter: one
				// token covers a whole burst of queued messages.
				select {
				case c.recvNotify <- struct{}{}:
				default:
				}
			}
			return msg, nil
		}
		select {
		case <-c.recvNotify:
		case <-timer:
			return nil, ErrTimeout
		case <-c.done:
			// Drain anything already queued before reporting closure.
			c.mu.Lock()
			msg, ok := c.popRecvLocked()
			c.mu.Unlock()
			if ok {
				return msg, nil
			}
			return nil, ErrClosed
		}
	}
}

// popRecvLocked removes and returns the oldest queued message. The
// head index walks the slice so steady-state pops allocate nothing;
// the backing array is reclaimed each time the queue drains. Caller
// holds mu.
func (c *Conn) popRecvLocked() ([]byte, bool) {
	if c.recvHead >= len(c.recvQ) {
		return nil, false
	}
	msg := c.recvQ[c.recvHead]
	c.recvQ[c.recvHead] = nil
	c.recvHead++
	if c.recvHead == len(c.recvQ) {
		c.recvQ = c.recvQ[:0]
		c.recvHead = 0
	}
	return msg, true
}

func (c *Conn) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for !c.isClosed() {
		_ = c.pc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, from, err := c.pc.ReadFrom(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return // closed or fatal
		}
		// The socket is unconnected: any host can land a datagram on
		// it. Processing one from the wrong source as if it came from
		// the peer would corrupt ACK and sequence state, so validate
		// before parsing.
		if from != nil && !addrEqual(from, c.peer, c.peerStr) {
			c.mu.Lock()
			c.stats.StrayPackets++
			c.mu.Unlock()
			continue
		}
		c.Inject(buf[:n])
	}
}

// addrEqual reports whether from is the registered peer. The typed
// *net.UDPAddr comparison avoids the per-datagram allocation that
// from.String() would cost on the hot read path; peerStr covers
// mixed-type pairs (e.g. a simulator address vs. a real one).
func addrEqual(from, peer net.Addr, peerStr string) bool {
	if from == peer {
		return true
	}
	fu, fok := from.(*net.UDPAddr)
	pu, pok := peer.(*net.UDPAddr)
	if fok && pok {
		return fu.Port == pu.Port && fu.IP.Equal(pu.IP) && fu.Zone == pu.Zone
	}
	return from.String() == peerStr
}

// Inject processes one raw datagram as if it had arrived on the socket.
// It lets an accept path that had to peek the first datagram (to learn
// the peer address) hand that datagram to the connection instead of
// dropping it and forcing the peer into an immediate retransmit, and is
// how a demultiplexer drives a NewDemuxed conn. Inject never blocks on
// the application: a data datagram the Recv queue can't absorb is
// refused (unACKed, so the peer retransmits it), which is what lets a
// single demux goroutine safely serve many sessions.
func (c *Conn) Inject(pkt []byte) {
	if len(pkt) < headerSize || pkt[0] != magicByte {
		return
	}
	seq := binary.BigEndian.Uint32(pkt[2:6])
	ts := binary.BigEndian.Uint32(pkt[6:10])
	switch pkt[1] {
	case typeData:
		c.handleData(seq, ts, pkt[headerSize:])
	case typeAck:
		var sack uint64
		if len(pkt) >= headerSize+8 {
			sack = binary.BigEndian.Uint64(pkt[headerSize:])
		}
		c.handleAck(seq, ts, sack)
	}
}

func (c *Conn) handleData(seq, ts uint32, payload []byte) {
	c.mu.Lock()
	// Receive-side flow control: when the application isn't draining
	// Recv, refuse new data before it mutates receive state. The
	// datagram is not ACKed, so the peer's retransmission redelivers it
	// once the queue drains, and the peer's send window throttles it
	// meanwhile — whereas queueing without bound would OOM and blocking
	// would wedge the caller (in demuxed mode that caller is the shared
	// demux goroutine, and one slow session would freeze the whole
	// fleet). Datagrams below recvNext still flow: they only re-ACK
	// delivered data.
	if len(c.recvQ)-c.recvHead >= c.opts.RecvQueue && !seqBefore(seq, c.recvNext) {
		c.stats.RecvQueueDrops++
		c.mu.Unlock()
		return
	}
	switch {
	case seqBefore(seq, c.recvNext):
		c.stats.Duplicates++
	case seq == c.recvNext:
		c.stream = append(c.stream, payload...)
		c.recvNext++
		for {
			next, ok := c.recvBuf[c.recvNext]
			if !ok {
				break
			}
			delete(c.recvBuf, c.recvNext)
			c.stream = append(c.stream, next...)
			c.recvNext++
		}
	default:
		if _, dup := c.recvBuf[seq]; dup {
			c.stats.Duplicates++
		} else {
			c.recvBuf[seq] = append([]byte(nil), payload...)
			c.stats.OutOfOrder++
		}
	}
	ackSeq := c.recvNext // cumulative: everything below is delivered
	// SACK bitmap: bit i set means datagram ackSeq+1+i is held in the
	// out-of-order buffer. The sender uses it to skip retransmitting
	// data the receiver already has and to repair every hole in the
	// window at once instead of one per round trip.
	var sack uint64
	for i := uint32(0); i < 64; i++ {
		if _, ok := c.recvBuf[ackSeq+1+i]; ok {
			sack |= 1 << i
		}
	}
	queued := c.extractMessagesLocked()
	c.mu.Unlock()
	if queued > 0 {
		// Non-blocking wake of a parked Recv; a set flag already covers
		// these messages.
		select {
		case c.recvNotify <- struct{}{}:
		default:
		}
	}

	var sackPayload []byte
	if sack != 0 {
		sackPayload = make([]byte, 8)
		binary.BigEndian.PutUint64(sackPayload, sack)
	}
	// The ACK echoes the triggering datagram's timestamp so the sender
	// can take an unambiguous RTT sample (retransmitted or not).
	if c.writePacket(typeAck, ackSeq, ts, sackPayload) == nil {
		c.mu.Lock()
		c.stats.AcksSent++
		c.mu.Unlock()
	}
}

// extractMessagesLocked parses complete length-prefixed messages from
// the assembled stream onto the Recv queue, returning how many were
// queued. On a corrupt prefix (overlong varint or a length beyond
// MaxMessage) it drops the buffered stream to resync rather than
// allocate unboundedly. Message buffers come from the Release free
// list when available, so a draining application makes delivery
// allocation-free. Caller holds mu.
func (c *Conn) extractMessagesLocked() int {
	queued := 0
	for {
		tail := c.stream[c.streamOff:]
		msgLen, n := binary.Uvarint(tail)
		if n == 0 {
			break // need more bytes for the prefix itself
		}
		if n < 0 || msgLen > uint64(c.opts.MaxMessage) {
			// Corrupt framing. Checked before the completeness test so a
			// poisoned prefix can't make the stream grow toward a bogus
			// multi-gigabyte length.
			c.stream = c.stream[:0]
			c.streamOff = 0
			c.stats.FramingErrors++
			break
		}
		if uint64(len(tail)-n) < msgLen {
			break // message body still in flight
		}
		msg := c.getMsgBufLocked()
		msg = append(msg, tail[n:n+int(msgLen)]...)
		c.streamOff += n + int(msgLen)
		c.recvQ = append(c.recvQ, msg)
		queued++
		c.stats.MsgsRecv++
	}
	switch {
	case c.streamOff == len(c.stream):
		// Fully consumed: rewind, keeping the capacity.
		c.stream = c.stream[:0]
		c.streamOff = 0
	case c.streamOff > 4096 && c.streamOff > len(c.stream)/2:
		// A partial message tail sits behind a large dead prefix; compact
		// so the buffer doesn't grow by the consumed bytes forever.
		n := copy(c.stream, c.stream[c.streamOff:])
		c.stream = c.stream[:n]
		c.streamOff = 0
	}
	return queued
}

// getMsgBufLocked pops a recycled message buffer (length zero, capacity
// warm) or returns nil, letting append allocate the first time around.
// Caller holds mu.
func (c *Conn) getMsgBufLocked() []byte {
	if n := len(c.msgFree); n > 0 {
		msg := c.msgFree[n-1]
		c.msgFree[n-1] = nil
		c.msgFree = c.msgFree[:n-1]
		return msg
	}
	return nil
}

// Release hands a message obtained from Recv back to the connection for
// reuse by future deliveries. Optional — unreleased messages are simply
// garbage collected — but a Recv→process→Release loop keeps the receive
// path allocation-free in steady state. The caller must not touch msg
// after Release.
func (c *Conn) Release(msg []byte) {
	if cap(msg) == 0 {
		return
	}
	c.mu.Lock()
	if len(c.msgFree) < c.opts.RecvQueue {
		c.msgFree = append(c.msgFree, msg[:0])
	}
	c.mu.Unlock()
}

func (c *Conn) handleAck(ackSeq, echo uint32, sack uint64) {
	now := time.Now()
	// Retransmissions are staged as complete pooled datagrams while mu
	// is held, then written after it is released: a packet built under
	// the lock can never alias a pending whose payload buffer another
	// ACK recycles mid-write.
	var resends []rsPkt

	c.mu.Lock()
	advanced := false
	var sample time.Duration
	var sampleSeq uint32
	haveSample := false
	for seq, p := range c.unacked {
		if !seqBefore(seq, ackSeq) {
			continue
		}
		// Karn-filtered fallback sample: only never-retransmitted
		// datagrams are unambiguous; take the newest one covered.
		if p.rtx == 0 && (!haveSample || seqBefore(sampleSeq, seq)) {
			sample = now.Sub(p.lastSent)
			sampleSeq = seq
			haveSample = true
		}
		delete(c.unacked, seq)
		c.putPendingLocked(p)
		advanced = true
	}
	// Selective acknowledgments: drop SACKed datagrams from the
	// retransmission scoreboard — the receiver holds them buffered, so
	// resending is pure waste — and remember the highest one, which
	// bounds the region where holes can be declared lost.
	var sackTop uint32
	haveSack := false
	freedBySack := false
	for i := uint32(0); i < 64; i++ {
		if sack&(1<<i) == 0 {
			continue
		}
		s := ackSeq + 1 + i
		if p, ok := c.unacked[s]; ok {
			delete(c.unacked, s)
			c.putPendingLocked(p)
			freedBySack = true
		}
		sackTop = s
		haveSack = true
	}
	if haveSack && !c.opts.FixedRTO {
		// RACK-style repair: anything still unacked below the highest
		// SACKed datagram was passed by later data. If it has also been
		// outstanding for about an RTT (guarding against plain
		// reordering), declare it lost and resend every such hole now —
		// the whole window repairs in one round trip instead of one
		// hole per RTT.
		guard := c.lossGuardLocked()
		for seq, p := range c.unacked {
			if seqBefore(seq, sackTop) && now.Sub(p.lastSent) >= guard {
				p.lastSent = now
				p.rtx++
				resends = append(resends, c.stagePacketLocked(seq, p.payload))
			}
		}
		if len(resends) > 0 {
			c.timerDeadline = now.Add(c.backoffRTOLocked(c.rtxBackoff))
			c.recoverSeq = c.sendSeq
			c.recoverValid = true
		}
	}
	if freedBySack {
		c.sendSlot.Broadcast()
	}
	switch {
	case advanced:
		if !c.opts.FixedRTO {
			// Prefer the echoed timestamp: it names the exact datagram
			// copy that triggered this ACK, so the sample excludes
			// head-of-line blocking behind a loss and stays valid even
			// for retransmissions (subsuming Karn's rule). The raw
			// send-time fallback covers a zero echo.
			if us := c.nowTS() - echo; echo != 0 && us < 1<<31 {
				c.updateRTTLocked(time.Duration(us) * time.Microsecond)
			} else if haveSample {
				c.updateRTTLocked(sample)
			}
		}
		c.lastAck = ackSeq
		c.dupAcks = 0
		c.rtxBackoff = 0
		if len(c.unacked) == 0 {
			c.timerDeadline = time.Time{}
			c.recoverValid = false
		} else {
			c.timerDeadline = now.Add(c.backoffRTOLocked(0))
			if c.recoverValid && !c.opts.FixedRTO {
				if !seqBefore(ackSeq, c.recoverSeq) {
					// The episode's last outstanding datagram is acked;
					// recovery is over.
					c.recoverValid = false
				} else if p, ok := c.unacked[ackSeq]; ok && now.Sub(p.lastSent) >= c.lossGuardLocked()/2 {
					// Partial ACK: the receiver is now stalled on the
					// next hole, and that datagram predates the episode
					// — over an RTT old and almost certainly lost. (The
					// time guard avoids double-sending a hole the SACK
					// repair above just covered.)
					p.lastSent = now
					p.rtx++
					resends = append(resends, c.stagePacketLocked(ackSeq, p.payload))
					c.timerDeadline = now.Add(c.backoffRTOLocked(0))
				}
			}
		}
		c.sendSlot.Broadcast()
	case ackSeq == c.lastAck && len(c.unacked) > 0 && !c.opts.FixedRTO:
		c.dupAcks++
		if c.dupAcks >= dupAckThreshold && (!c.fastRtxValid || c.fastRtxSeq != ackSeq) {
			c.dupAcks = 0
			c.fastRtxSeq = ackSeq
			c.fastRtxValid = true
			// The receiver is stalled on exactly ackSeq; resend it now
			// instead of waiting out the RTO.
			if p, ok := c.unacked[ackSeq]; ok && now.Sub(p.lastSent) >= c.lossGuardLocked()/2 {
				p.lastSent = now
				p.rtx++
				resends = append(resends, c.stagePacketLocked(ackSeq, p.payload))
				// Push the RTO timer out so it doesn't immediately
				// re-retransmit the datagram we just resent, and open
				// a recovery episode covering everything in flight.
				c.timerDeadline = now.Add(c.backoffRTOLocked(c.rtxBackoff))
				c.recoverSeq = c.sendSeq
				c.recoverValid = true
			}
		}
	}
	wheelDeadline := c.timerDeadline
	c.mu.Unlock()
	if c.wheel != nil && !wheelDeadline.IsZero() {
		// Earliest-wins scheduling makes a later deadline a no-op and a
		// cleared timer need nothing: a stale wheel entry fires, sees no
		// expired work, and drops out on its own.
		c.wheel.schedule(c, wheelDeadline)
	}

	okCount, okBytes := c.writeStaged(resends)
	if okCount > 0 {
		c.mu.Lock()
		c.stats.DataResent += okCount
		c.stats.FastResent += okCount
		c.stats.BytesSent += okBytes
		c.mu.Unlock()
	}
}

// stagePacketLocked copies one retransmission into a pooled datagram
// buffer. Caller holds mu.
func (c *Conn) stagePacketLocked(seq uint32, payload []byte) rsPkt {
	bp := pktBufPool.Get().(*[]byte)
	*bp = appendPacket((*bp)[:0], typeData, seq, c.nowTS(), payload)
	return rsPkt{buf: bp}
}

// writeStaged writes staged retransmissions to the socket (outside any
// lock) and recycles their buffers, returning the datagrams and bytes
// that landed.
func (c *Conn) writeStaged(pkts []rsPkt) (okCount, okBytes int64) {
	for _, r := range pkts {
		if _, err := c.pc.WriteTo(*r.buf, c.peer); err == nil || c.isClosed() {
			okCount++
			okBytes += int64(len(*r.buf))
		}
		*r.buf = (*r.buf)[:0]
		pktBufPool.Put(r.buf)
	}
	return okCount, okBytes
}

// lossGuardLocked is the RACK-style reordering guard: a datagram
// passed by a SACKed later datagram is declared lost only once it has
// been outstanding for roughly a smoothed RTT plus jitter headroom,
// so plain reordering doesn't trigger spurious repair. Caller holds mu.
func (c *Conn) lossGuardLocked() time.Duration {
	g := c.srtt + 2*c.rttvar
	if g <= 0 {
		g = c.currentRTOLocked() / 2
	}
	return g
}

// updateRTTLocked feeds one RTT sample into the RFC 6298 estimator.
// Caller holds mu.
func (c *Conn) updateRTTLocked(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if !c.rttInit {
		c.srtt = sample
		c.rttvar = sample / 2
		c.rttInit = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	if c.minSRTT == 0 || c.srtt < c.minSRTT {
		c.minSRTT = c.srtt
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.opts.MinRTO {
		rto = c.opts.MinRTO
	}
	if rto > c.opts.MaxRTO {
		rto = c.opts.MaxRTO
	}
	c.rto = rto
}

// backoffRTOLocked returns the retransmission deadline interval for a
// datagram already retransmitted rtx times. Caller holds mu.
func (c *Conn) backoffRTOLocked(rtx int) time.Duration {
	rto := c.currentRTOLocked()
	if c.opts.FixedRTO {
		return rto // the legacy baseline never backs off
	}
	for i := 0; i < rtx && rto < c.opts.MaxRTO; i++ {
		rto *= 2
	}
	if rto > c.opts.MaxRTO {
		rto = c.opts.MaxRTO
	}
	return rto
}

// timerCheck is the wheel-driven equivalent of one retransmitLoop
// iteration: run any expired retransmission work and report when the
// wheel should next check this connection. A zero return means no timer
// is armed (nothing in flight, or the connection closed) and the wheel
// forgets the connection until a send re-arms it.
func (c *Conn) timerCheck(now time.Time) time.Time {
	if c.isClosed() {
		return time.Time{}
	}
	if c.opts.FixedRTO {
		// Legacy baseline: per-datagram fixed timers have no single
		// deadline to chase, so poll at RTO/4 while data is in flight,
		// exactly like the ticker it replaces.
		c.retransmitDueFixed()
		c.mu.Lock()
		inflight := len(c.unacked) > 0
		c.mu.Unlock()
		if !inflight {
			return time.Time{}
		}
		return now.Add(c.opts.RTO / 4)
	}
	c.retransmitOldestExpired()
	c.mu.Lock()
	next := c.timerDeadline
	c.mu.Unlock()
	return next
}

func (c *Conn) retransmitLoop() {
	defer c.wg.Done()
	// The tick only bounds how promptly an expiry is noticed; each
	// datagram's own deadline decides whether it is resent.
	interval := c.opts.MinRTO / 4
	if c.opts.FixedRTO {
		interval = c.opts.RTO / 4
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		if c.opts.FixedRTO {
			c.retransmitDueFixed()
			continue
		}
		c.retransmitOldestExpired()
	}
}

// retransmitDueFixed is the legacy per-datagram timer: every unacked
// datagram whose fixed RTO has elapsed is resent. Kept as the
// FixedRTO baseline the adaptive transport is measured against.
func (c *Conn) retransmitDueFixed() {
	now := time.Now()
	var due []rsPkt
	c.mu.Lock()
	for seq, p := range c.unacked {
		if now.Sub(p.lastSent) >= c.backoffRTOLocked(p.rtx) {
			p.lastSent = now
			p.rtx++
			due = append(due, c.stagePacketLocked(seq, p.payload))
		}
	}
	c.mu.Unlock()
	okCount, okBytes := c.writeStaged(due)
	if okCount > 0 {
		c.mu.Lock()
		c.stats.DataResent += okCount
		c.stats.TimeoutResent += okCount
		c.stats.BytesSent += okBytes
		c.mu.Unlock()
	}
}

// retransmitOldestExpired implements the RFC 6298 §5 single-timer
// discipline: on expiry, resend only the oldest outstanding datagram,
// back the timer off exponentially, and rearm. Trailing in-flight
// datagrams are left alone — with cumulative ACKs they are almost
// always already buffered at the receiver, and resending them is what
// made per-datagram timers collapse into whole-window resend storms.
func (c *Conn) retransmitOldestExpired() {
	now := time.Now()
	c.mu.Lock()
	if c.timerDeadline.IsZero() || now.Before(c.timerDeadline) || len(c.unacked) == 0 {
		c.mu.Unlock()
		return
	}
	var oldest uint32
	first := true
	for seq := range c.unacked {
		if first || seqBefore(seq, oldest) {
			oldest = seq
			first = false
		}
	}
	p := c.unacked[oldest]
	p.lastSent = now
	p.rtx++
	if c.rtxBackoff < 16 {
		c.rtxBackoff++
	}
	c.timerDeadline = now.Add(c.backoffRTOLocked(c.rtxBackoff))
	c.recoverSeq = c.sendSeq
	c.recoverValid = true
	staged := c.stagePacketLocked(oldest, p.payload)
	c.mu.Unlock()
	if okCount, okBytes := c.writeStaged([]rsPkt{staged}); okCount > 0 {
		c.mu.Lock()
		c.stats.DataResent += okCount
		c.stats.TimeoutResent += okCount
		c.stats.BytesSent += okBytes
		c.mu.Unlock()
	}
}

func isTimeout(err error) bool {
	// Direct assertion first: errors.As takes the target's address and
	// costs an allocation per call, which the 20Hz-per-connection read
	// poll turns into measurable garbage at fleet scale.
	if ne, ok := err.(net.Error); ok {
		return ne.Timeout()
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Group fans one message out to several connections — the stand-in for
// the UDP multicast the paper uses to replicate state-mutating
// commands to every service device with one logical transmission
// (§VI-B). SendAll returns the first error encountered but attempts
// every member.
type Group struct {
	conns []*Conn
}

// NewGroup builds a multicast group over the given connections.
func NewGroup(conns ...*Conn) *Group {
	return &Group{conns: append([]*Conn(nil), conns...)}
}

// Len returns group size.
func (g *Group) Len() int { return len(g.conns) }

// SendAll delivers msg to every member.
func (g *Group) SendAll(msg []byte) error {
	var firstErr error
	for _, c := range g.conns {
		if err := c.Send(msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
