package rudp

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// pair builds two connected Conns over the in-memory network.
func pair(t *testing.T, loss float64) (*Conn, *Conn) {
	t.Helper()
	pcA, pcB := NewMemPair(loss, 99)
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	a := New(pcA, pcB.Addr(), opts)
	b := New(pcB, pcA.Addr(), opts)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestSendRecvLossless(t *testing.T) {
	a, b := pair(t, 0)
	want := []byte("hello gbooster")
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	a, b := pair(t, 0)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%04d", i); string(got) != want {
			t.Fatalf("message %d = %q, want %q (ordering broken)", i, got, want)
		}
	}
}

func TestLargeMessageFragmentation(t *testing.T) {
	a, b := pair(t, 0)
	big := make([]byte, 300_000) // ~250 datagrams at 1200 B
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large message corrupted")
	}
	if st := a.Stats(); st.DataSent < 200 {
		t.Fatalf("expected fragmentation, sent %d datagrams", st.DataSent)
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	a, b := pair(t, 0.15)
	const n = 60
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(10 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("frame-%03d", i); string(got) != want {
				done <- fmt.Errorf("message %d = %q, want %q", i, got, want)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.DataResent == 0 {
		t.Fatal("15% loss produced zero retransmissions")
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pair(t, 0.05)
	errs := make(chan error, 2)
	go func() {
		for i := 0; i < 30; i++ {
			if err := a.Send([]byte(fmt.Sprintf("a->b %d", i))); err != nil {
				errs <- err
				return
			}
			if _, err := a.Recv(5 * time.Second); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		for i := 0; i < 30; i++ {
			if _, err := b.Recv(5 * time.Second); err != nil {
				errs <- err
				return
			}
			if err := b.Send([]byte(fmt.Sprintf("b->a %d", i))); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	_, b := pair(t, 0)
	start := time.Now()
	_, err := b.Recv(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout error = %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, b := pair(t, 0)
	_ = a.Close()
	if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close error = %v", err)
	}
	if _, err := b.Recv(50 * time.Millisecond); err == nil {
		t.Fatal("recv should not succeed with nothing sent")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil && !errors.Is(err, errMemClosed) {
		t.Fatalf("double close error = %v", err)
	}
}

func TestMessageTooLarge(t *testing.T) {
	pcA, pcB := NewMemPair(0, 1)
	opts := DefaultOptions()
	opts.MaxMessage = 10
	a := New(pcA, pcB.Addr(), opts)
	defer a.Close()
	defer pcB.Close()
	if err := a.Send(make([]byte, 11)); !errors.Is(err, ErrMsgTooLarge) {
		t.Fatalf("oversize error = %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	a, b := pair(t, 0)
	if err := a.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.MsgsSent != 1 || sa.DataSent == 0 || sa.BytesSent == 0 {
		t.Fatalf("sender stats %+v", sa)
	}
	if sb.MsgsRecv != 1 || sb.AcksSent == 0 {
		t.Fatalf("receiver stats %+v", sb)
	}
}

func TestGroupSendAll(t *testing.T) {
	a1, b1 := pair(t, 0)
	a2, b2 := pair(t, 0)
	_ = a2
	g := NewGroup(a1, a2)
	if g.Len() != 2 {
		t.Fatalf("group len = %d", g.Len())
	}
	if err := g.SendAll([]byte("state-update")); err != nil {
		t.Fatal(err)
	}
	for i, b := range []*Conn{b1, b2} {
		got, err := b.Recv(time.Second)
		if err != nil || string(got) != "state-update" {
			t.Fatalf("member %d: %q %v", i, got, err)
		}
	}
}

func TestOverRealUDPLoopback(t *testing.T) {
	pcA, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	pcB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	a := New(pcA, pcB.LocalAddr(), DefaultOptions())
	b := New(pcB, pcA.LocalAddr(), DefaultOptions())
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte("gl"), 5000)
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over real UDP")
	}
}

func TestMemConnDeadline(t *testing.T) {
	a, _ := NewMemPair(0, 3)
	defer a.Close()
	if err := a.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_, _, err := a.ReadFrom(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error = %v", err)
	}
}

func TestMemConnLossInjection(t *testing.T) {
	a, b := NewMemPair(1.0, 5) // everything dropped
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteTo([]byte("x"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	if a.DropCount != 1 {
		t.Fatalf("DropCount = %d", a.DropCount)
	}
	_ = b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 4)); err == nil {
		t.Fatal("dropped packet was delivered")
	}
}

func TestReliabilityUnderReordering(t *testing.T) {
	pcA, pcB := NewMemPair(0, 77)
	pcA.SetReorder(0.3)
	pcB.SetReorder(0.3)
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	a := New(pcA, pcB.Addr(), opts)
	b := New(pcB, pcA.Addr(), opts)
	defer a.Close()
	defer b.Close()
	const n = 80
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(10 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("msg-%03d", i); string(got) != want {
				done <- fmt.Errorf("message %d = %q, want %q", i, got, want)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.OutOfOrder == 0 {
		t.Fatal("reordering injection never produced out-of-order datagrams")
	}
}

func TestReliabilityUnderLossAndReordering(t *testing.T) {
	pcA, pcB := NewMemPair(0.08, 78)
	pcA.SetReorder(0.25)
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	a := New(pcA, pcB.Addr(), opts)
	b := New(pcB, pcA.Addr(), opts)
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte("frame"), 3000) // fragments across ~13 datagrams
	const n = 15
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(15 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, payload) {
				done <- fmt.Errorf("message %d corrupted (%d bytes)", i, len(got))
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
