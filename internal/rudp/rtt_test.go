package rudp

import (
	"testing"
	"time"
)

func estConn(opts Options) *Conn {
	c := &Conn{opts: opts.withDefaults()}
	c.rto = c.opts.RTO
	return c
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	c := estConn(Options{})
	c.updateRTTLocked(100 * time.Millisecond)
	if c.srtt != 100*time.Millisecond {
		t.Fatalf("SRTT = %v", c.srtt)
	}
	if c.rttvar != 50*time.Millisecond {
		t.Fatalf("RTTVAR = %v", c.rttvar)
	}
	// RFC 6298: RTO = SRTT + 4*RTTVAR = 300ms.
	if c.rto != 300*time.Millisecond {
		t.Fatalf("RTO = %v", c.rto)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	c := estConn(Options{})
	for i := 0; i < 64; i++ {
		c.updateRTTLocked(40 * time.Millisecond)
	}
	if c.srtt < 39*time.Millisecond || c.srtt > 41*time.Millisecond {
		t.Fatalf("SRTT did not converge: %v", c.srtt)
	}
	// With a steady path the variance decays and RTO approaches SRTT
	// (floored by MinRTO).
	if c.rto > 60*time.Millisecond {
		t.Fatalf("RTO did not tighten on a steady path: %v", c.rto)
	}
	// A latency spike reopens the variance term.
	c.updateRTTLocked(200 * time.Millisecond)
	if c.rto < 80*time.Millisecond {
		t.Fatalf("RTO did not widen after a spike: %v", c.rto)
	}
}

func TestRTTEstimatorClamps(t *testing.T) {
	opts := Options{MinRTO: 10 * time.Millisecond, MaxRTO: 100 * time.Millisecond}
	c := estConn(opts)
	c.updateRTTLocked(time.Microsecond)
	if c.rto != 10*time.Millisecond {
		t.Fatalf("RTO below MinRTO: %v", c.rto)
	}
	c.updateRTTLocked(10 * time.Second)
	if c.rto != 100*time.Millisecond {
		t.Fatalf("RTO above MaxRTO: %v", c.rto)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	opts := Options{RTO: 20 * time.Millisecond, MaxRTO: 100 * time.Millisecond}
	c := estConn(opts)
	want := []time.Duration{20, 40, 80, 100, 100}
	for rtx, w := range want {
		if got := c.backoffRTOLocked(rtx); got != w*time.Millisecond {
			t.Fatalf("backoff(rtx=%d) = %v, want %v", rtx, got, w*time.Millisecond)
		}
	}
}

func TestBackoffDisabledInFixedMode(t *testing.T) {
	c := estConn(Options{RTO: 20 * time.Millisecond, FixedRTO: true})
	for rtx := 0; rtx < 8; rtx++ {
		if got := c.backoffRTOLocked(rtx); got != 20*time.Millisecond {
			t.Fatalf("fixed-RTO backoff(rtx=%d) = %v", rtx, got)
		}
	}
	// Fixed mode also ignores estimator updates for the effective RTO.
	if got := c.currentRTOLocked(); got != 20*time.Millisecond {
		t.Fatalf("fixed currentRTO = %v", got)
	}
}
