// Loss-soak tests: drive the reliable transport over netsim's
// packet-level link emulator (delay + jitter + bandwidth + loss) and
// assert goodput and recovery-latency bounds — the §VII-B stability
// story depends on the transport not stalling the frame pipeline on a
// lossy radio. The adaptive-RTO transport is also A/B'd against the
// fixed-RTO baseline it replaced.
package rudp_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/rudp"
)

// soakResult summarizes one unidirectional soak transfer.
type soakResult struct {
	elapsed    time.Duration
	goodputBps float64
	maxGap     time.Duration // worst inter-delivery stall (recovery latency)
	stats      rudp.Stats
	health     *metrics.TransportCollector
}

// soakPayload builds message i deterministically so the receiver can
// verify content byte-for-byte.
func soakPayload(i, size int) []byte {
	msg := make([]byte, size)
	for j := range msg {
		msg[j] = byte((i*131 + j*31) ^ (j >> 3))
	}
	return msg
}

// runSoak ships msgs messages of size bytes from a fresh sender to a
// fresh receiver across an emulated link and fails the test on any
// loss, reordering, or corruption of the message stream.
func runSoak(t *testing.T, opts rudp.Options, cfg netsim.LinkConfig, seed uint64, msgs, size int) soakResult {
	t.Helper()
	la, lb := netsim.NewLinkPair(cfg, seed)
	a := rudp.New(la, lb.Addr(), opts)
	b := rudp.New(lb, la.Addr(), opts)
	defer a.Close()
	defer b.Close()

	health := &metrics.TransportCollector{}
	sampleDone := make(chan struct{})
	samplerExited := make(chan struct{})
	go func() {
		defer close(samplerExited)
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-ticker.C:
				st := a.Stats()
				use := 0.0
				if st.WindowLimit > 0 {
					use = float64(st.WindowOccupancy) / float64(st.WindowLimit)
				}
				health.Add(metrics.TransportSample{
					SRTT:       st.SRTT,
					RTO:        st.RTO,
					ResendRate: st.ResendRate(),
					WindowUse:  use,
				})
			}
		}
	}()

	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := a.Send(soakPayload(i, size)); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()

	start := time.Now()
	last := start
	var maxGap time.Duration
	for i := 0; i < msgs; i++ {
		got, err := b.Recv(30 * time.Second)
		if err != nil {
			t.Fatalf("soak recv %d/%d: %v", i, msgs, err)
		}
		want := soakPayload(i, size)
		if len(got) != len(want) {
			t.Fatalf("soak message %d: %d bytes, want %d (stream corrupted)", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("soak message %d corrupt at byte %d (out-of-order delivery?)", i, j)
			}
		}
		now := time.Now()
		if gap := now.Sub(last); gap > maxGap {
			maxGap = gap
		}
		last = now
	}
	elapsed := time.Since(start)
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	close(sampleDone)
	<-samplerExited
	return soakResult{
		elapsed:    elapsed,
		goodputBps: float64(msgs*size) / elapsed.Seconds(),
		maxGap:     maxGap,
		stats:      a.Stats(),
		health:     health,
	}
}

// soakLink is the reference radio path: the Lossy5 profile — 30 ms
// RTT, 2 ms jitter, 1 MB/s each way with a 50 ms bottleneck queue —
// with the loss rate swapped per test. The bandwidth is chosen just
// below the window-limited send rate, so a transport that multiplies
// its offered load with spurious retransmissions congests its own
// bottleneck queue instead of hiding behind link headroom.
func soakLink(loss float64) netsim.LinkConfig {
	cfg := netsim.Lossy5.Link
	cfg.Loss = loss
	return cfg
}

// soakOptions sizes the window to the path's delay-bandwidth product
// (≈60 KB at 2 MB/s × 30 ms) so the un-congestion-controlled sender
// doesn't drown its own bottleneck queue and inflate every RTT; both
// transports get the identical configuration except for the recovery
// machinery under test.
func soakOptions(fixed bool) rudp.Options {
	opts := rudp.DefaultOptions()
	opts.Window = 32
	opts.FixedRTO = fixed
	return opts
}

func TestSoakAdaptiveAcrossLossRates(t *testing.T) {
	msgs, size := 100, 4096
	rates := []float64{0.01, 0.05, 0.20}
	gapBound := map[float64]time.Duration{0.01: time.Second, 0.05: time.Second, 0.20: 2 * time.Second}
	if testing.Short() {
		msgs = 40
		rates = []float64{0.05}
	}
	for _, loss := range rates {
		loss := loss
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			cfg := soakLink(loss)
			res := runSoak(t, soakOptions(false), cfg, 1000+uint64(loss*100), msgs, size)
			t.Logf("loss=%.0f%%: goodput %.0f KB/s, maxGap %v, resendRate %.3f, SRTT %v, RTO %v",
				loss*100, res.goodputBps/1024, res.maxGap, res.stats.ResendRate(), res.stats.SRTT, res.stats.RTO)
			// Recovery latency: a single loss must never stall the
			// in-order stream for longer than a few adapted RTOs.
			if res.maxGap > gapBound[loss] {
				t.Errorf("max delivery stall %v exceeds %v at %.0f%% loss", res.maxGap, gapBound[loss], loss*100)
			}
			// Goodput floor: at least a tenth of the raw link rate even
			// at 20% loss (the fixed-RTO transport collapses far below).
			if res.goodputBps < float64(cfg.Bandwidth)/10 {
				t.Errorf("goodput %.0f B/s below floor at %.0f%% loss", res.goodputBps, loss*100)
			}
			if res.stats.SRTT <= 0 {
				t.Error("estimator never produced an RTT sample")
			}
			if res.health.Count() > 0 && res.health.MaxRTO() > soakOptions(false).MaxRTO {
				t.Errorf("sampled RTO %v beyond MaxRTO", res.health.MaxRTO())
			}
		})
	}
}

func TestSoakAdaptiveBeatsFixedRTO(t *testing.T) {
	// The acceptance bar: at 5% loss on a path whose RTT (30 ms) sits
	// above the legacy fixed 20 ms RTO, the adaptive transport must at
	// least double the baseline's goodput (the baseline spuriously
	// retransmits every datagram and floods its own bottleneck queue).
	// The transfer is long enough to amortize the adaptive transport's
	// bootstrap phase (its first RTT sample also arrives after the
	// too-short initial RTO has fired once) and to keep the measured
	// wall-clock goodput ratio well clear of the bar: short transfers
	// put the run-to-run ratio spread right on 2×.
	msgs, size := 800, 4096
	if testing.Short() {
		msgs = 400
	}
	cfg := soakLink(0.05)
	adaptive := runSoak(t, soakOptions(false), cfg, 4242, msgs, size)
	fixed := runSoak(t, soakOptions(true), cfg, 4242, msgs, size)
	t.Logf("adaptive: %.0f KB/s (resend %.3f, maxGap %v) | fixed: %.0f KB/s (resend %.3f, maxGap %v)",
		adaptive.goodputBps/1024, adaptive.stats.ResendRate(), adaptive.maxGap,
		fixed.goodputBps/1024, fixed.stats.ResendRate(), fixed.maxGap)
	if adaptive.goodputBps < 2*fixed.goodputBps {
		t.Fatalf("adaptive goodput %.0f B/s is not ≥2× fixed %.0f B/s",
			adaptive.goodputBps, fixed.goodputBps)
	}
	if adaptive.stats.ResendRate() >= fixed.stats.ResendRate() {
		t.Fatalf("adaptive resend rate %.3f not below fixed %.3f",
			adaptive.stats.ResendRate(), fixed.stats.ResendRate())
	}
}
