package rudp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// wrapPair builds a connected pair whose a→b sequence space starts at
// start, so tests can cross the uint32 boundary in a few datagrams.
func wrapPair(t *testing.T, start uint32, loss float64, seed uint64) (*Conn, *Conn) {
	t.Helper()
	pcA, pcB := NewMemPair(loss, seed)
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	a := New(pcA, pcB.Addr(), opts)
	b := New(pcB, pcA.Addr(), opts)
	a.mu.Lock()
	a.sendSeq = start
	a.lastAck = start
	a.mu.Unlock()
	b.mu.Lock()
	b.recvNext = start
	b.mu.Unlock()
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestSequenceWraparound(t *testing.T) {
	// 200 single-datagram messages starting 25 datagrams before the
	// uint32 boundary: delivery must continue across the wrap.
	a, b := wrapPair(t, ^uint32(0)-25, 0, 42)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("wrap-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d (deadlocked at the wrap?): %v", i, err)
		}
		if want := fmt.Sprintf("wrap-%04d", i); string(got) != want {
			t.Fatalf("message %d = %q, want %q", i, got, want)
		}
	}
}

func TestSequenceWraparoundUnderLoss(t *testing.T) {
	// Same crossing with 10% loss, so retransmission, ack accounting,
	// and fast retransmit all run on wrapped sequence numbers.
	a, b := wrapPair(t, ^uint32(0)-40, 0.10, 77)
	const n = 120
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(10 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("wrap-loss-%04d", i); string(got) != want {
				done <- fmt.Errorf("message %d = %q, want %q", i, got, want)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("wrap-loss-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.DataResent == 0 {
		t.Fatal("10% loss across the wrap produced zero retransmissions")
	}
}

func TestSeqBefore(t *testing.T) {
	max := ^uint32(0)
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{max, 0, true},        // wraparound: max precedes 0
		{0, max, false},       //
		{max - 10, max, true}, //
		{10, max - 10, false}, // far apart across the wrap
	}
	for _, c := range cases {
		if got := seqBefore(c.a, c.b); got != c.want {
			t.Errorf("seqBefore(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConcurrentSendNoInterleave(t *testing.T) {
	// Multi-fragment messages from several goroutines must each occupy
	// a contiguous sequence range; interleaved fragments corrupt the
	// length-prefixed stream. Run under -race in the tier-1 check.
	a, b := pair(t, 0)
	const (
		senders = 4
		perSend = 20
		msgSize = 4000 // ~4 fragments at 1200 B
	)
	var wg sync.WaitGroup
	sendErrs := make(chan error, senders)
	for id := 0; id < senders; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte('A' + id)}, msgSize)
			for i := 0; i < perSend; i++ {
				if err := a.Send(msg); err != nil {
					sendErrs <- err
					return
				}
			}
		}(id)
	}
	counts := make(map[byte]int)
	for i := 0; i < senders*perSend; i++ {
		got, err := b.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v (framing corrupted by interleaving?)", i, err)
		}
		if len(got) != msgSize {
			t.Fatalf("message %d has %d bytes, want %d", i, len(got), msgSize)
		}
		tag := got[0]
		for _, c := range got {
			if c != tag {
				t.Fatalf("message %d mixes content from two senders (%q vs %q)", i, tag, c)
			}
		}
		counts[tag]++
	}
	wg.Wait()
	select {
	case err := <-sendErrs:
		t.Fatal(err)
	default:
	}
	for id := 0; id < senders; id++ {
		if got := counts[byte('A'+id)]; got != perSend {
			t.Fatalf("sender %d: %d messages delivered, want %d", id, got, perSend)
		}
	}
}

func TestExtractCorruptFramingResync(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxMessage = 1024
	c := &Conn{opts: opts.withDefaults()}

	// A length prefix beyond MaxMessage must drop the stream, even when
	// the declared body hasn't "arrived" yet — otherwise the stream
	// buffer grows toward a bogus multi-gigabyte length.
	c.stream = binary.AppendUvarint(nil, 1<<40)
	c.stream = append(c.stream, []byte("junk that should be discarded")...)
	if out := c.extractMessagesLocked(); out != 0 {
		t.Fatalf("corrupt stream yielded %d messages", out)
	}
	if len(c.stream)-c.streamOff != 0 {
		t.Fatal("stream not dropped after corrupt length prefix")
	}
	if c.stats.FramingErrors != 1 {
		t.Fatalf("FramingErrors = %d, want 1", c.stats.FramingErrors)
	}

	// An overlong varint (uint64 overflow) is also corrupt.
	c.stream = bytes.Repeat([]byte{0xff}, 9)
	c.stream = append(c.stream, 0x02)
	if out := c.extractMessagesLocked(); out != 0 {
		t.Fatalf("overflowed varint yielded %d messages", out)
	}
	if len(c.stream)-c.streamOff != 0 || c.stats.FramingErrors != 2 {
		t.Fatalf("stream=%v FramingErrors=%d after varint overflow", c.stream, c.stats.FramingErrors)
	}

	// After a resync the stream parses fresh messages again.
	want := []byte("recovered")
	c.stream = binary.AppendUvarint(nil, uint64(len(want)))
	c.stream = append(c.stream, want...)
	if out := c.extractMessagesLocked(); out != 1 {
		t.Fatalf("post-resync extraction queued %d messages, want 1", out)
	}
	if msg, ok := c.popRecvLocked(); !ok || !bytes.Equal(msg, want) {
		t.Fatalf("post-resync message = %q, want %q", msg, want)
	}

	// An incomplete prefix is not corruption: wait for more bytes.
	c.stream = []byte{0x80}
	if out := c.extractMessagesLocked(); out != 0 || len(c.stream) != 1 {
		t.Fatal("incomplete prefix must be preserved, not dropped")
	}
}

func TestRecvDrainsQueuedAfterClose(t *testing.T) {
	a, b := pair(t, 0)
	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("drain-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for all messages to be queued on the receive side.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := b.Stats(); st.MsgsRecv == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("messages never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	_ = b.Close()
	for i := 0; i < n; i++ {
		got, err := b.Recv(100 * time.Millisecond)
		if err != nil {
			t.Fatalf("recv %d after close: %v (queued messages must drain first)", i, err)
		}
		if want := fmt.Sprintf("drain-%d", i); string(got) != want {
			t.Fatalf("drained message %d = %q, want %q", i, got, want)
		}
	}
	if _, err := b.Recv(100 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain error = %v, want ErrClosed", err)
	}
}

func TestRecvCloseOrderingUnderLoad(t *testing.T) {
	// Close the receiver mid-stream: every message delivered before or
	// after the close must be an in-order prefix, and Recv must finish
	// with ErrClosed, never corrupt data.
	a, b := pair(t, 0)
	stop := make(chan struct{})
	var sendWG sync.WaitGroup
	sendWG.Add(1)
	go func() {
		defer sendWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := a.Send([]byte(fmt.Sprintf("load-%06d", i))); err != nil {
				return
			}
		}
	}()
	next := 0
	for ; next < 50; next++ {
		got, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", next, err)
		}
		if want := fmt.Sprintf("load-%06d", next); string(got) != want {
			t.Fatalf("message %d = %q, want %q", next, got, want)
		}
	}
	close(stop)
	_ = b.Close()
	// With the receiver gone the sender can be parked in Send waiting
	// for window space that will never open; only a local Close
	// releases it (same contract as writing to a vanished TCP peer).
	_ = a.Close()
	sendWG.Wait()
	for {
		got, err := b.Recv(100 * time.Millisecond)
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("final error = %v, want ErrClosed", err)
			}
			break
		}
		if want := fmt.Sprintf("load-%06d", next); string(got) != want {
			t.Fatalf("drained message %d = %q, want %q", next, got, want)
		}
		next++
	}
}

func TestInjectFirstDatagram(t *testing.T) {
	// An accept path that peeks the first datagram off the socket (to
	// learn the peer address) injects it instead of dropping it: the
	// session must start without a forced retransmit or duplicate.
	pcA, pcB := NewMemPair(0, 9)
	opts := DefaultOptions()
	opts.RTO = 300 * time.Millisecond // ample: a retransmit means the fix failed
	a := New(pcA, pcB.Addr(), opts)
	defer a.Close()
	if err := a.Send([]byte("first contact")); err != nil {
		t.Fatal(err)
	}
	// Peek the datagram directly off the packet conn, as ServeUDP does.
	_ = pcB.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, _, err := pcB.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = pcB.SetReadDeadline(time.Time{})
	b := New(pcB, pcA.Addr(), opts)
	defer b.Close()
	b.Inject(buf[:n])
	got, err := b.Recv(time.Second)
	if err != nil || string(got) != "first contact" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	if st := a.Stats(); st.DataResent != 0 {
		t.Fatalf("injected first datagram still caused %d retransmits", st.DataResent)
	}
	if st := b.Stats(); st.Duplicates != 0 {
		t.Fatalf("injected first datagram caused %d duplicates", st.Duplicates)
	}
}

func TestFastRetransmitRecoversLoss(t *testing.T) {
	// Sustained multi-fragment traffic at 5% loss: dup-ACKs must
	// trigger fast retransmits, and the estimator must have locked on.
	a, b := pair(t, 0.05)
	payload := bytes.Repeat([]byte("frame"), 1000) // ~5 fragments
	const n = 120
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(15 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, payload) {
				done <- fmt.Errorf("message %d corrupted (%d bytes)", i, len(got))
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.FastResent == 0 {
		t.Fatalf("no fast retransmits under 5%% loss: %+v", st)
	}
	if st.SRTT <= 0 {
		t.Fatalf("estimator never locked on: SRTT = %v", st.SRTT)
	}
	if st.RTO < a.opts.MinRTO || st.RTO > a.opts.MaxRTO {
		t.Fatalf("RTO %v outside [%v, %v]", st.RTO, a.opts.MinRTO, a.opts.MaxRTO)
	}
	if st.FastResent+st.TimeoutResent != st.DataResent {
		t.Fatalf("resend split %d+%d != total %d", st.FastResent, st.TimeoutResent, st.DataResent)
	}
}

func TestStatsNotCountedOnFailedWrite(t *testing.T) {
	// A conn whose socket is already closed must not count bytes it
	// never managed to write.
	pcA, pcB := NewMemPair(0, 13)
	a := New(pcA, pcB.Addr(), DefaultOptions())
	defer a.Close()
	defer pcB.Close()
	if err := a.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.DataSent != 1 || st.BytesSent == 0 {
		t.Fatalf("baseline stats %+v", st)
	}
	// Sabotage the socket out from under the conn: writePacket now
	// fails while the conn still thinks it is open.
	_ = pcA.Close()
	_ = a.Send([]byte("lost"))
	st2 := a.Stats()
	if st2.DataSent != st.DataSent || st2.BytesSent != st.BytesSent {
		t.Fatalf("failed write still counted: before %+v after %+v", st, st2)
	}
}
