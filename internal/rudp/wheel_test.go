package rudp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// demux pumps one shared PacketConn and routes datagrams to registered
// demuxed conns by source address — the miniature of what the fleet
// manager does, enough to exercise injection-driven conns in-package.
type demux struct {
	pc net.PacketConn

	mu    sync.Mutex
	conns map[string]*Conn

	done chan struct{}
	wg   sync.WaitGroup
}

func newDemux(pc net.PacketConn) *demux {
	d := &demux{pc: pc, conns: make(map[string]*Conn), done: make(chan struct{})}
	d.wg.Add(1)
	go d.run()
	return d
}

func (d *demux) add(addr net.Addr, c *Conn) {
	d.mu.Lock()
	d.conns[addr.String()] = c
	d.mu.Unlock()
}

func (d *demux) run() {
	defer d.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-d.done:
			return
		default:
		}
		_ = d.pc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, from, err := d.pc.ReadFrom(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		if from == nil || !IsProtocolDatagram(buf[:n]) {
			continue
		}
		d.mu.Lock()
		c := d.conns[from.String()]
		d.mu.Unlock()
		if c != nil {
			c.Inject(buf[:n])
		}
	}
}

func (d *demux) close() {
	close(d.done)
	_ = d.pc.Close()
	d.wg.Wait()
}

func TestWheelScheduleFireRemove(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	defer w.Close()
	pcA, pcB := NewMemPair(0, 11)
	defer pcB.Close()
	c := NewDemuxed(pcA, pcB.Addr(), DefaultOptions(), w)
	defer c.Close()

	// A scheduled conn occupies one slot; earliest wins: pushing the
	// deadline out must not move it, pulling it in must.
	w.schedule(c, time.Now().Add(time.Hour))
	if w.Len() != 1 {
		t.Fatalf("Len after schedule = %d", w.Len())
	}
	w.schedule(c, time.Now().Add(2*time.Hour))
	w.mu.Lock()
	far := w.sched[c]
	w.mu.Unlock()
	w.schedule(c, time.Now().Add(10*time.Millisecond))
	w.mu.Lock()
	near := w.sched[c]
	w.mu.Unlock()
	if near >= far {
		t.Fatalf("earlier deadline did not win: near=%d far=%d", near, far)
	}
	w.remove(c)
	if w.Len() != 0 {
		t.Fatalf("Len after remove = %d", w.Len())
	}
}

func TestWheelDrivesRetransmission(t *testing.T) {
	// One-way loss severe enough that the first copy of some datagram
	// dies: only the wheel can resend it, because a demuxed conn runs
	// no retransmitLoop of its own.
	hub, leaves := NewMemHub(1, 0, 1234)
	leaf := leaves[0]
	leaf.loss = 0 // leaf->hub lossless so ACKs always return
	hub.loss = 0.4

	w := NewWheel(time.Millisecond, 64)
	defer w.Close()
	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	server := NewDemuxed(hub, leaf.Addr(), opts, w)
	defer server.Close()
	client := New(leaf, hub.Addr(), opts)
	defer client.Close()
	d := newDemux(hub)
	defer d.close()
	d.add(leaf.Addr(), server)

	const n = 40
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := client.Recv(10 * time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("frame-%03d", i); string(got) != want {
				done <- fmt.Errorf("message %d = %q, want %q", i, got, want)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := server.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := server.Stats(); st.DataResent == 0 {
		t.Fatal("40% loss with wheel-driven timers produced zero retransmissions")
	}
	// Quiescent conn: once everything is acked the wheel forgets it.
	deadline := time.Now().Add(2 * time.Second)
	for w.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wheel still tracks %d conns after drain", w.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDemuxedConnsRunNoGoroutines(t *testing.T) {
	hub, leaves := NewMemHub(64, 0, 7)
	defer hub.Close()
	for _, l := range leaves {
		defer l.Close()
	}
	w := NewWheel(time.Millisecond, 256)
	defer w.Close()

	runtime.GC()
	before := runtime.NumGoroutine()
	conns := make([]*Conn, len(leaves))
	for i, l := range leaves {
		conns[i] = NewDemuxed(hub, l.Addr(), DefaultOptions(), w)
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	if grew := after - before; grew > 2 {
		t.Fatalf("64 demuxed conns grew goroutines by %d; want O(1) total", grew)
	}
	for _, c := range conns {
		_ = c.Close()
	}
	// The shared listener must survive demuxed closes.
	if _, err := hub.WriteTo([]byte("x"), leaves[0].Addr()); err != nil {
		t.Fatalf("shared socket closed by demuxed Conn.Close: %v", err)
	}
}

func TestReadLoopDropsStrayPeer(t *testing.T) {
	// One listener, two remote peers: the conn is bound to leaf 0, and
	// leaf 1 lands a perfectly well-formed DATA datagram on the shared
	// socket. Before source validation the conn would deliver it as the
	// peer's seq-0 message and desynchronize the real stream.
	hub, leaves := NewMemHub(2, 0, 21)
	real, evil := leaves[0], leaves[1]
	defer evil.Close()

	opts := DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	server := New(hub, real.Addr(), opts)
	defer server.Close()
	client := New(real, hub.Addr(), opts)
	defer client.Close()

	forged := appendPacket(nil, typeData, 0, 0, encodeMsgPayload("evil"))
	if !IsProtocolDatagram(forged) {
		t.Fatal("forged packet should look like a protocol datagram")
	}
	if _, err := evil.WriteTo(forged, hub.Addr()); err != nil {
		t.Fatal(err)
	}
	// Give the stray a head start so arrival order can't save us.
	time.Sleep(20 * time.Millisecond)
	if err := client.Send([]byte("real")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "real" {
		t.Fatalf("server delivered %q; stray datagram won the session", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for server.Stats().StrayPackets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stray datagram was not counted in Stats.StrayPackets")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// encodeMsgPayload frames s the way Send does (uvarint length prefix),
// so a forged datagram would parse as a complete message if it got
// through.
func encodeMsgPayload(s string) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(s)))
	return append(buf, s...)
}

func TestIsProtocolDatagram(t *testing.T) {
	valid := appendPacket(nil, typeData, 1, 2, []byte("x"))
	if !IsProtocolDatagram(valid) {
		t.Fatal("valid data packet rejected")
	}
	ack := appendPacket(nil, typeAck, 1, 2, nil)
	if !IsProtocolDatagram(ack) {
		t.Fatal("valid ack packet rejected")
	}
	for name, b := range map[string][]byte{
		"empty":     nil,
		"short":     {magicByte, typeData},
		"bad magic": append([]byte{0x00}, valid[1:]...),
		"bad type":  {magicByte, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0},
		"text":      []byte("GET / HTTP/1.1\r\n"),
	} {
		if IsProtocolDatagram(b) {
			t.Fatalf("%s accepted as protocol datagram", name)
		}
	}
}

func TestDemuxedBidirectionalUnderLoss(t *testing.T) {
	// Four demuxed sessions share one hub socket and one wheel while
	// every path drops 10%: reliability must hold per session with no
	// cross-talk, all retransmissions wheel-driven on the hub side.
	const sessions = 4
	hub, leaves := NewMemHub(sessions, 0.10, 4242)
	w := NewWheel(time.Millisecond, 256)
	defer w.Close()
	opts := DefaultOptions()
	opts.RTO = 15 * time.Millisecond

	servers := make([]*Conn, sessions)
	clients := make([]*Conn, sessions)
	d := newDemux(hub)
	defer d.close()
	for i := range servers {
		servers[i] = NewDemuxed(hub, leaves[i].Addr(), opts, w)
		clients[i] = New(leaves[i], hub.Addr(), opts)
		d.add(leaves[i].Addr(), servers[i])
	}
	defer func() {
		for i := range servers {
			_ = servers[i].Close()
			_ = clients[i].Close()
		}
	}()

	const n = 25
	var wg sync.WaitGroup
	errs := make(chan error, 2*sessions)
	for i := 0; i < sessions; i++ {
		i := i
		payload := bytes.Repeat([]byte{byte('A' + i)}, 2000)
		wg.Add(2)
		go func() { // client -> server
			defer wg.Done()
			for j := 0; j < n; j++ {
				if err := clients[i].Send(payload); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() { // server receives and echoes
			defer wg.Done()
			for j := 0; j < n; j++ {
				got, err := servers[i].Recv(20 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("session %d recv %d: %w", i, j, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("session %d: cross-session corruption", i)
					return
				}
				if err := servers[i].Send(got); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		i := i
		payload := bytes.Repeat([]byte{byte('A' + i)}, 2000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				got, err := clients[i].Recv(20 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("session %d echo %d: %w", i, j, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("session %d: echo corrupted", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	var resent int64
	for i := range servers {
		resent += servers[i].Stats().DataResent
	}
	if resent == 0 {
		t.Fatal("10% loss across 4 demuxed sessions produced zero wheel-driven retransmissions")
	}
}
