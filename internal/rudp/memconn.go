package rudp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// memAddr is the address type of the in-memory network.
type memAddr string

// Network names the fake network.
func (a memAddr) Network() string { return "mem" }

// String renders the address.
func (a memAddr) String() string { return string(a) }

// errMemClosed reports use after close.
var errMemClosed = errors.New("rudp: mem conn closed")

type memPacket struct {
	data []byte
	from net.Addr
}

// MemConn is an in-memory net.PacketConn with optional datagram loss,
// used to test the reliability layer deterministically and to run
// whole GBooster sessions without sockets.
type MemConn struct {
	addr memAddr

	mu       sync.Mutex
	peers    map[string]*MemConn
	queue    chan memPacket
	closed   bool
	deadline time.Time
	// rtimer is ReadFrom's reusable deadline timer, parked here stopped
	// and drained between calls. A fleet of connections polling with
	// short deadlines would otherwise allocate one timer per poll.
	rtimer *time.Timer

	loss float64
	rng  *sim.RNG

	// reorderP is the probability a datagram is held back and delivered
	// after the next one (out-of-order injection); held is the datagram
	// currently delayed.
	reorderP float64
	held     *memPacket

	// DropCount counts datagrams the loss model discarded.
	DropCount int64
}

// SetReorder makes the conn hold back outgoing datagrams with
// probability p, delivering each held datagram after the next send —
// out-of-order injection for torture-testing the reliability layer.
func (m *MemConn) SetReorder(p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reorderP = p
}

// NewMemPair returns two connected in-memory packet conns with the
// given independent loss probability in each direction.
func NewMemPair(loss float64, seed uint64) (*MemConn, *MemConn) {
	rng := sim.NewRNG(seed)
	a := &MemConn{addr: "mem-a", queue: make(chan memPacket, 4096), loss: loss, rng: rng.Fork()}
	b := &MemConn{addr: "mem-b", queue: make(chan memPacket, 4096), loss: loss, rng: rng.Fork()}
	a.peers = map[string]*MemConn{string(b.addr): b}
	b.peers = map[string]*MemConn{string(a.addr): a}
	return a, b
}

// NewMemHub returns a hub conn connected to n leaf conns — a star
// network standing in for one UDP listener serving many remote peers.
// Every leaf writes to the hub (and only the hub); the hub reaches any
// leaf by address. The hub's queue is sized for the fan-in so n leaves
// bursting at once don't overflow it into phantom drops.
func NewMemHub(n int, loss float64, seed uint64) (*MemConn, []*MemConn) {
	rng := sim.NewRNG(seed)
	cap := 4096
	if c := n * 64; c > cap {
		cap = c
	}
	hub := &MemConn{
		addr:  "mem-hub",
		queue: make(chan memPacket, cap),
		loss:  loss,
		rng:   rng.Fork(),
		peers: make(map[string]*MemConn, n),
	}
	leaves := make([]*MemConn, n)
	for i := range leaves {
		leaf := &MemConn{
			addr:  memAddr(fmt.Sprintf("mem-leaf-%d", i)),
			queue: make(chan memPacket, 4096),
			loss:  loss,
			rng:   rng.Fork(),
			peers: map[string]*MemConn{string(hub.addr): hub},
		}
		hub.peers[string(leaf.addr)] = leaf
		leaves[i] = leaf
	}
	return hub, leaves
}

// LocalAddr implements net.PacketConn.
func (m *MemConn) LocalAddr() net.Addr { return m.addr }

// Addr returns the conn's address for use as a peer.
func (m *MemConn) Addr() net.Addr { return m.addr }

// WriteTo implements net.PacketConn with loss injection.
func (m *MemConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, errMemClosed
	}
	peer := m.peers[addr.String()]
	drop := m.loss > 0 && m.rng.Bool(m.loss)
	if drop {
		m.DropCount++
	}
	m.mu.Unlock()
	if peer == nil {
		return 0, errors.New("rudp: unknown mem peer")
	}
	if drop {
		return len(p), nil // lost in flight
	}
	pkt := memPacket{data: append([]byte(nil), p...), from: m.addr}
	// Out-of-order injection: hold this datagram and release it after
	// the next send, swapping their arrival order.
	m.mu.Lock()
	switch {
	case m.held != nil:
		heldPkt := *m.held
		m.held = nil
		m.mu.Unlock()
		if !peer.deliver(pkt) || !peer.deliver(heldPkt) {
			m.mu.Lock()
			m.DropCount++
			m.mu.Unlock()
		}
		return len(p), nil
	case m.reorderP > 0 && m.rng.Bool(m.reorderP):
		m.held = &pkt
		m.mu.Unlock()
		return len(p), nil
	default:
		m.mu.Unlock()
	}
	if !peer.deliver(pkt) {
		// Peer closed or queue overflow: behaves like router drop.
		m.mu.Lock()
		m.DropCount++
		m.mu.Unlock()
	}
	return len(p), nil
}

// deliver enqueues a packet under the receiver's lock so a concurrent
// Close cannot race the channel send.
func (m *MemConn) deliver(pkt memPacket) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	select {
	case m.queue <- pkt:
		return true
	default:
		return false
	}
}

// errReadTimeout is the shared deadline-expiry error: returning a
// fresh &timeoutError{} per expired poll is pure garbage at fleet
// polling rates.
var errReadTimeout net.Error = &timeoutError{}

// ReadFrom implements net.PacketConn honoring the read deadline.
func (m *MemConn) ReadFrom(p []byte) (int, net.Addr, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, nil, errMemClosed
	}
	deadline := m.deadline
	m.mu.Unlock()

	var t *time.Timer
	var timer <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, nil, errReadTimeout
		}
		// Borrow the parked timer (stopped and drained by whoever
		// parked it); a concurrent second reader just allocates.
		m.mu.Lock()
		t = m.rtimer
		m.rtimer = nil
		m.mu.Unlock()
		if t == nil {
			t = time.NewTimer(d)
		} else {
			t.Reset(d)
		}
		timer = t.C
	}
	var (
		n    int
		from net.Addr
		err  error
	)
	fired := false
	select {
	case pkt, ok := <-m.queue:
		if !ok {
			err = errMemClosed
		} else {
			n = copy(p, pkt.data)
			from = pkt.from
		}
	case <-timer:
		fired = true
		err = errReadTimeout
	}
	if t != nil {
		// Park the timer stopped and drained so the next borrower can
		// Reset it safely (pre-1.23 timer semantics).
		park := true
		if !t.Stop() && !fired {
			select {
			case <-t.C:
			default:
				// Stop lost the race to an expiry whose send to t.C
				// hasn't landed yet; the value will arrive after this
				// drain and would hand the next borrower an immediate
				// spurious timeout. Let this timer be GC'd instead.
				park = false
			}
		}
		if park {
			m.mu.Lock()
			if m.rtimer == nil {
				m.rtimer = t
			}
			m.mu.Unlock()
		}
	}
	return n, from, err
}

// Close implements net.PacketConn.
func (m *MemConn) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	return nil
}

// SetDeadline implements net.PacketConn (read side only; writes never
// block).
func (m *MemConn) SetDeadline(t time.Time) error { return m.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (m *MemConn) SetReadDeadline(t time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn (no-op: writes are
// buffered).
func (m *MemConn) SetWriteDeadline(time.Time) error { return nil }

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "rudp: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

var _ net.PacketConn = (*MemConn)(nil)
var _ net.Error = (*timeoutError)(nil)
