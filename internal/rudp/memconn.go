package rudp

import (
	"errors"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// memAddr is the address type of the in-memory network.
type memAddr string

// Network names the fake network.
func (a memAddr) Network() string { return "mem" }

// String renders the address.
func (a memAddr) String() string { return string(a) }

// errMemClosed reports use after close.
var errMemClosed = errors.New("rudp: mem conn closed")

type memPacket struct {
	data []byte
	from net.Addr
}

// MemConn is an in-memory net.PacketConn with optional datagram loss,
// used to test the reliability layer deterministically and to run
// whole GBooster sessions without sockets.
type MemConn struct {
	addr memAddr

	mu       sync.Mutex
	peers    map[string]*MemConn
	queue    chan memPacket
	closed   bool
	deadline time.Time

	loss float64
	rng  *sim.RNG

	// reorderP is the probability a datagram is held back and delivered
	// after the next one (out-of-order injection); held is the datagram
	// currently delayed.
	reorderP float64
	held     *memPacket

	// DropCount counts datagrams the loss model discarded.
	DropCount int64
}

// SetReorder makes the conn hold back outgoing datagrams with
// probability p, delivering each held datagram after the next send —
// out-of-order injection for torture-testing the reliability layer.
func (m *MemConn) SetReorder(p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reorderP = p
}

// NewMemPair returns two connected in-memory packet conns with the
// given independent loss probability in each direction.
func NewMemPair(loss float64, seed uint64) (*MemConn, *MemConn) {
	rng := sim.NewRNG(seed)
	a := &MemConn{addr: "mem-a", queue: make(chan memPacket, 4096), loss: loss, rng: rng.Fork()}
	b := &MemConn{addr: "mem-b", queue: make(chan memPacket, 4096), loss: loss, rng: rng.Fork()}
	a.peers = map[string]*MemConn{string(b.addr): b}
	b.peers = map[string]*MemConn{string(a.addr): a}
	return a, b
}

// LocalAddr implements net.PacketConn.
func (m *MemConn) LocalAddr() net.Addr { return m.addr }

// Addr returns the conn's address for use as a peer.
func (m *MemConn) Addr() net.Addr { return m.addr }

// WriteTo implements net.PacketConn with loss injection.
func (m *MemConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, errMemClosed
	}
	peer := m.peers[addr.String()]
	drop := m.loss > 0 && m.rng.Bool(m.loss)
	if drop {
		m.DropCount++
	}
	m.mu.Unlock()
	if peer == nil {
		return 0, errors.New("rudp: unknown mem peer")
	}
	if drop {
		return len(p), nil // lost in flight
	}
	pkt := memPacket{data: append([]byte(nil), p...), from: m.addr}
	// Out-of-order injection: hold this datagram and release it after
	// the next send, swapping their arrival order.
	m.mu.Lock()
	switch {
	case m.held != nil:
		heldPkt := *m.held
		m.held = nil
		m.mu.Unlock()
		if !peer.deliver(pkt) || !peer.deliver(heldPkt) {
			m.mu.Lock()
			m.DropCount++
			m.mu.Unlock()
		}
		return len(p), nil
	case m.reorderP > 0 && m.rng.Bool(m.reorderP):
		m.held = &pkt
		m.mu.Unlock()
		return len(p), nil
	default:
		m.mu.Unlock()
	}
	if !peer.deliver(pkt) {
		// Peer closed or queue overflow: behaves like router drop.
		m.mu.Lock()
		m.DropCount++
		m.mu.Unlock()
	}
	return len(p), nil
}

// deliver enqueues a packet under the receiver's lock so a concurrent
// Close cannot race the channel send.
func (m *MemConn) deliver(pkt memPacket) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	select {
	case m.queue <- pkt:
		return true
	default:
		return false
	}
}

// ReadFrom implements net.PacketConn honoring the read deadline.
func (m *MemConn) ReadFrom(p []byte) (int, net.Addr, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, nil, errMemClosed
	}
	deadline := m.deadline
	m.mu.Unlock()

	var timer <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, nil, &timeoutError{}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case pkt, ok := <-m.queue:
		if !ok {
			return 0, nil, errMemClosed
		}
		n := copy(p, pkt.data)
		return n, pkt.from, nil
	case <-timer:
		return 0, nil, &timeoutError{}
	}
}

// Close implements net.PacketConn.
func (m *MemConn) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	return nil
}

// SetDeadline implements net.PacketConn (read side only; writes never
// block).
func (m *MemConn) SetDeadline(t time.Time) error { return m.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (m *MemConn) SetReadDeadline(t time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn (no-op: writes are
// buffered).
func (m *MemConn) SetWriteDeadline(time.Time) error { return nil }

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "rudp: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

var _ net.PacketConn = (*MemConn)(nil)
var _ net.Error = (*timeoutError)(nil)
