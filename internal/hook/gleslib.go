package hook

import (
	"github.com/gbooster/gbooster/internal/gles"
)

// CommandSink receives the commands a GL library's entry points are
// called with. The genuine library's sink feeds the local GPU; the
// GBooster wrapper's sink serializes and forwards to service devices.
type CommandSink func(gles.Command)

// NewGLESLibrary builds a Library whose symbol table covers every GL
// entry point in the command set, each implemented by handing the
// marshalled call to sink. It also defines eglGetProcAddress returning
// those same functions, so the library serves the paper's resolution
// cases 1 and 2 by construction.
func NewGLESLibrary(name string, sink CommandSink) *Library {
	lib := NewLibrary(name)
	fns := make(map[string]GLFunc, gles.NumOps())
	for _, op := range gles.AllOps() {
		op := op
		fn := GLFunc(func(cmd gles.Command) {
			cmd.Op = op // the symbol called determines the operation
			sink(cmd)
		})
		fns[op.String()] = fn
		lib.Define(op.String(), fn)
	}
	lib.Define(SymGetProcAddress, ProcAddressFunc(func(sym string) GLFunc {
		return fns[sym] // nil for unknown names, like the real call
	}))
	return lib
}

// InstallGenuineGL registers the "system" GLES/EGL library pair backed
// by the local GPU, as a stock Android process image would have. It
// returns the library so tests can inspect it.
func InstallGenuineGL(ln *Linker, gpu *gles.GPU, onErr func(error)) (*Library, error) {
	lib := NewGLESLibrary(LibGLES, func(cmd gles.Command) {
		if _, err := gpu.Execute(cmd); err != nil && onErr != nil {
			onErr(err)
		}
	})
	lib.Provide(LibEGL)
	if err := ln.Register(lib); err != nil {
		return nil, err
	}
	return lib, nil
}

// InstallWrapper registers a wrapper library built around sink, claims
// the GL sonames so rewritten dlopen calls land on it, and preloads it
// — the complete §IV-A hook installation in one call. The wrapper's
// soname is distinct from the genuine library's so both can coexist.
func InstallWrapper(ln *Linker, soname string, sink CommandSink) (*Library, error) {
	lib := NewGLESLibrary(soname, sink)
	lib.Provide(LibGLES, LibEGL)
	if err := ln.Register(lib); err != nil {
		return nil, err
	}
	if err := ln.Preload(soname); err != nil {
		return nil, err
	}
	return lib, nil
}
