// Package hook simulates the dynamic-linker machinery GBooster uses to
// intercept OpenGL ES calls (paper §IV-A). The real system sets
// LD_PRELOAD so Android's linker resolves GL symbols against a wrapper
// library, and additionally rewrites eglGetProcAddress, dlopen, and
// dlsym so the two dynamic resolution paths land in the wrapper too.
//
// This package reproduces that mechanism: a Linker owns Libraries and a
// preload list; applications resolve symbols through one of the three
// paths the paper enumerates (direct link, eglGetProcAddress,
// dlopen/dlsym), and installing a preloaded wrapper library diverts all
// three without the application changing.
package hook

import (
	"errors"
	"fmt"
	"sort"

	"github.com/gbooster/gbooster/internal/gles"
)

// Linker errors.
var (
	ErrDuplicateLibrary = errors.New("hook: library already registered")
	ErrUnknownLibrary   = errors.New("hook: unknown library")
	ErrUnknownSymbol    = errors.New("hook: undefined symbol")
	ErrNilFunction      = errors.New("hook: nil function for symbol")
	ErrBadLinkMode      = errors.New("hook: invalid link mode")
)

// GLFunc is the uniform ABI of every GL entry point in the simulated
// linker: the call's arguments arrive pre-marshalled as a Command. The
// symbol name selects which GL function the value implements.
type GLFunc func(gles.Command)

// ProcAddressFunc is the ABI of eglGetProcAddress: it resolves a GL
// entry-point name at runtime. A nil result models the NULL pointer the
// real call returns for unknown names.
type ProcAddressFunc func(name string) GLFunc

// Well-known library and symbol names.
const (
	LibGLES           = "libGLESv2.so"
	LibEGL            = "libEGL.so"
	SymGetProcAddress = "eglGetProcAddress"
)

// Library is a loadable shared object: a named bag of symbols, plus the
// list of library names it claims to provide when it is preloaded
// (GBooster's wrapper claims libGLESv2.so and libEGL.so so that
// rewritten dlopen calls resolve to it).
type Library struct {
	name     string
	provides map[string]bool
	symbols  map[string]any
}

// NewLibrary creates an empty library. A library always provides
// itself.
func NewLibrary(name string) *Library {
	return &Library{
		name:     name,
		provides: map[string]bool{name: true},
		symbols:  make(map[string]any),
	}
}

// Name returns the library's soname.
func (l *Library) Name() string { return l.name }

// Provide declares that, when preloaded, this library satisfies dlopen
// requests for the given sonames — the paper's dlopen rewrite.
func (l *Library) Provide(sonames ...string) {
	for _, s := range sonames {
		l.provides[s] = true
	}
}

// Define registers a symbol. fn may be a GLFunc, a ProcAddressFunc, or
// any other function type; resolution is untyped like a real linker and
// callers assert the ABI they expect.
func (l *Library) Define(symbol string, fn any) {
	if fn == nil {
		panic(fmt.Sprintf("hook: Define(%q) with nil function", symbol))
	}
	l.symbols[symbol] = fn
}

// Lookup returns the symbol's value.
func (l *Library) Lookup(symbol string) (any, bool) {
	v, ok := l.symbols[symbol]
	return v, ok
}

// Symbols returns the sorted symbol names, for diagnostics.
func (l *Library) Symbols() []string {
	out := make([]string, 0, len(l.symbols))
	for s := range l.symbols {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Linker models the Android dynamic linker for one process: registered
// libraries plus the LD_PRELOAD list. Preloaded libraries shadow every
// later resolution, which is the entire hooking mechanism.
type Linker struct {
	libs    map[string]*Library
	preload []*Library
}

// NewLinker returns a linker with no libraries loaded.
func NewLinker() *Linker {
	return &Linker{libs: make(map[string]*Library)}
}

// Register adds a library to the process image.
func (ln *Linker) Register(lib *Library) error {
	if _, ok := ln.libs[lib.name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateLibrary, lib.name)
	}
	ln.libs[lib.name] = lib
	return nil
}

// Preload appends a registered library to the LD_PRELOAD list. Symbols
// from preloaded libraries win over every normally-loaded library, in
// preload order.
func (ln *Linker) Preload(name string) error {
	lib, ok := ln.libs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLibrary, name)
	}
	ln.preload = append(ln.preload, lib)
	return nil
}

// ClearPreload empties the LD_PRELOAD list (used by tests and by the
// runtime when offloading is disabled mid-session).
func (ln *Linker) ClearPreload() { ln.preload = nil }

// Resolve performs load-time symbol resolution: preloaded libraries
// first (in order), then every other registered library in sorted name
// order for determinism. This is the paper's case 1 — an application
// directly linked against libGLESv2.
func (ln *Linker) Resolve(symbol string) (any, error) {
	for _, lib := range ln.preload {
		if v, ok := lib.Lookup(symbol); ok {
			return v, nil
		}
	}
	names := make([]string, 0, len(ln.libs))
	for n := range ln.libs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if ln.isPreloaded(ln.libs[n]) {
			continue
		}
		if v, ok := ln.libs[n].Lookup(symbol); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownSymbol, symbol)
}

// Dlopen models the (rewritten) dlopen: a preloaded library that
// provides the requested soname is returned in preference to the
// genuine library — the paper's case 3 rewrite.
func (ln *Linker) Dlopen(soname string) (*Library, error) {
	for _, lib := range ln.preload {
		if lib.provides[soname] {
			return lib, nil
		}
	}
	if lib, ok := ln.libs[soname]; ok {
		return lib, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownLibrary, soname)
}

// Dlsym models dlsym against a handle returned by Dlopen.
func (ln *Linker) Dlsym(lib *Library, symbol string) (any, error) {
	if lib == nil {
		return nil, fmt.Errorf("%w: nil handle", ErrUnknownLibrary)
	}
	v, ok := lib.Lookup(symbol)
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrUnknownSymbol, symbol, lib.name)
	}
	return v, nil
}

func (ln *Linker) isPreloaded(lib *Library) bool {
	for _, p := range ln.preload {
		if p == lib {
			return true
		}
	}
	return false
}

// LinkMode selects which of the paper's three GL-resolution paths an
// application uses (§IV-A).
type LinkMode int

// The three resolution paths.
const (
	// LinkDirect models an application linked against libGLESv2 at
	// build time: symbols resolve at load time.
	LinkDirect LinkMode = iota + 1
	// LinkProcAddress models an application that calls
	// eglGetProcAddress for each entry point.
	LinkProcAddress
	// LinkDlopen models an application that dlopen()s the GL library
	// and dlsym()s each entry point.
	LinkDlopen
)

// String names the mode for experiment output.
func (m LinkMode) String() string {
	switch m {
	case LinkDirect:
		return "direct"
	case LinkProcAddress:
		return "eglGetProcAddress"
	case LinkDlopen:
		return "dlopen/dlsym"
	default:
		return fmt.Sprintf("LinkMode(%d)", int(m))
	}
}

// ResolveGL resolves a GL entry point the way an application in the
// given mode would. Whatever the mode, a preloaded wrapper library
// receives the call — that is the property GBooster depends on.
func ResolveGL(ln *Linker, mode LinkMode, symbol string) (GLFunc, error) {
	switch mode {
	case LinkDirect:
		v, err := ln.Resolve(symbol)
		if err != nil {
			return nil, err
		}
		return asGLFunc(symbol, v)
	case LinkProcAddress:
		v, err := ln.Resolve(SymGetProcAddress)
		if err != nil {
			return nil, err
		}
		gpa, ok := v.(ProcAddressFunc)
		if !ok {
			return nil, fmt.Errorf("%w: %s has wrong ABI", ErrBadLinkMode, SymGetProcAddress)
		}
		fn := gpa(symbol)
		if fn == nil {
			return nil, fmt.Errorf("%w: %s via %s", ErrUnknownSymbol, symbol, SymGetProcAddress)
		}
		return fn, nil
	case LinkDlopen:
		lib, err := ln.Dlopen(LibGLES)
		if err != nil {
			return nil, err
		}
		v, err := ln.Dlsym(lib, symbol)
		if err != nil {
			return nil, err
		}
		return asGLFunc(symbol, v)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadLinkMode, int(mode))
	}
}

func asGLFunc(symbol string, v any) (GLFunc, error) {
	fn, ok := v.(GLFunc)
	if !ok {
		return nil, fmt.Errorf("%w: %s has wrong ABI %T", ErrBadLinkMode, symbol, v)
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: %s", ErrNilFunction, symbol)
	}
	return fn, nil
}
