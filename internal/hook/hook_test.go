package hook

import (
	"errors"
	"testing"

	"github.com/gbooster/gbooster/internal/gles"
)

func TestLibraryDefineLookup(t *testing.T) {
	lib := NewLibrary("libfoo.so")
	lib.Define("f", GLFunc(func(gles.Command) {}))
	if _, ok := lib.Lookup("f"); !ok {
		t.Fatal("defined symbol not found")
	}
	if _, ok := lib.Lookup("g"); ok {
		t.Fatal("undefined symbol found")
	}
	if lib.Name() != "libfoo.so" {
		t.Fatalf("Name() = %q", lib.Name())
	}
	syms := lib.Symbols()
	if len(syms) != 1 || syms[0] != "f" {
		t.Fatalf("Symbols() = %v", syms)
	}
}

func TestLibraryDefineNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Define(nil) did not panic")
		}
	}()
	NewLibrary("x").Define("f", nil)
}

func TestLinkerRegisterDuplicate(t *testing.T) {
	ln := NewLinker()
	if err := ln.Register(NewLibrary("a")); err != nil {
		t.Fatal(err)
	}
	if err := ln.Register(NewLibrary("a")); !errors.Is(err, ErrDuplicateLibrary) {
		t.Fatalf("duplicate register error = %v", err)
	}
}

func TestLinkerPreloadUnknown(t *testing.T) {
	ln := NewLinker()
	if err := ln.Preload("missing.so"); !errors.Is(err, ErrUnknownLibrary) {
		t.Fatalf("preload unknown error = %v", err)
	}
}

func TestResolvePreloadShadowsGenuine(t *testing.T) {
	ln := NewLinker()
	genuine, wrapper := NewLibrary("libGLESv2.so"), NewLibrary("libwrap.so")
	var hit string
	genuine.Define("glClear", GLFunc(func(gles.Command) { hit = "genuine" }))
	wrapper.Define("glClear", GLFunc(func(gles.Command) { hit = "wrapper" }))
	for _, lib := range []*Library{genuine, wrapper} {
		if err := ln.Register(lib); err != nil {
			t.Fatal(err)
		}
	}
	// Before preload: sorted-name resolution finds the genuine library.
	v, err := ln.Resolve("glClear")
	if err != nil {
		t.Fatal(err)
	}
	v.(GLFunc)(gles.Command{})
	if hit != "genuine" {
		t.Fatalf("pre-preload resolution hit %q", hit)
	}
	// After preload: the wrapper shadows.
	if err := ln.Preload("libwrap.so"); err != nil {
		t.Fatal(err)
	}
	v, err = ln.Resolve("glClear")
	if err != nil {
		t.Fatal(err)
	}
	v.(GLFunc)(gles.Command{})
	if hit != "wrapper" {
		t.Fatalf("post-preload resolution hit %q", hit)
	}
	// ClearPreload restores genuine resolution.
	ln.ClearPreload()
	v, _ = ln.Resolve("glClear")
	v.(GLFunc)(gles.Command{})
	if hit != "genuine" {
		t.Fatalf("after ClearPreload resolution hit %q", hit)
	}
}

func TestResolveUnknownSymbol(t *testing.T) {
	ln := NewLinker()
	if _, err := ln.Resolve("nope"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("unknown symbol error = %v", err)
	}
}

func TestDlopenPrefersProvidingPreload(t *testing.T) {
	ln := NewLinker()
	genuine := NewLibrary(LibGLES)
	wrapper := NewLibrary("libwrap.so")
	wrapper.Provide(LibGLES)
	if err := ln.Register(genuine); err != nil {
		t.Fatal(err)
	}
	if err := ln.Register(wrapper); err != nil {
		t.Fatal(err)
	}
	lib, err := ln.Dlopen(LibGLES)
	if err != nil || lib != genuine {
		t.Fatalf("pre-preload Dlopen = %v, %v; want genuine", lib, err)
	}
	if err := ln.Preload("libwrap.so"); err != nil {
		t.Fatal(err)
	}
	lib, err = ln.Dlopen(LibGLES)
	if err != nil || lib != wrapper {
		t.Fatalf("post-preload Dlopen = %v, %v; want wrapper", lib, err)
	}
	if _, err := ln.Dlopen("libmissing.so"); !errors.Is(err, ErrUnknownLibrary) {
		t.Fatalf("Dlopen missing error = %v", err)
	}
}

func TestDlsym(t *testing.T) {
	ln := NewLinker()
	lib := NewLibrary("a")
	lib.Define("f", GLFunc(func(gles.Command) {}))
	if err := ln.Register(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Dlsym(lib, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Dlsym(lib, "g"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("Dlsym unknown error = %v", err)
	}
	if _, err := ln.Dlsym(nil, "f"); !errors.Is(err, ErrUnknownLibrary) {
		t.Fatalf("Dlsym nil handle error = %v", err)
	}
}

func TestLinkModeString(t *testing.T) {
	if LinkDirect.String() != "direct" || LinkProcAddress.String() != "eglGetProcAddress" ||
		LinkDlopen.String() != "dlopen/dlsym" {
		t.Fatal("LinkMode names wrong")
	}
	if LinkMode(9).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}

// setupHookedProcess builds a process image with a genuine GL library
// feeding a local GPU and a GBooster wrapper intercepting into captured.
func setupHookedProcess(t *testing.T) (*Linker, *gles.GPU, *[]gles.Command) {
	t.Helper()
	ln := NewLinker()
	gpu := gles.NewGPU(8, 8)
	if _, err := InstallGenuineGL(ln, gpu, nil); err != nil {
		t.Fatal(err)
	}
	var captured []gles.Command
	if _, err := InstallWrapper(ln, "libgbooster.so", func(cmd gles.Command) {
		captured = append(captured, cmd)
	}); err != nil {
		t.Fatal(err)
	}
	return ln, gpu, &captured
}

func TestAllThreeLinkModesHitWrapper(t *testing.T) {
	for _, mode := range []LinkMode{LinkDirect, LinkProcAddress, LinkDlopen} {
		t.Run(mode.String(), func(t *testing.T) {
			ln, gpu, captured := setupHookedProcess(t)
			fn, err := ResolveGL(ln, mode, "glClearColor")
			if err != nil {
				t.Fatal(err)
			}
			fn(gles.CmdClearColor(1, 0, 0, 1))
			if len(*captured) != 1 || (*captured)[0].Op != gles.OpClearColor {
				t.Fatalf("wrapper captured %v", *captured)
			}
			// The genuine GPU never saw the call: interception is total.
			if gpu.Ctx.Stats.Commands != 0 {
				t.Fatalf("genuine library executed %d commands", gpu.Ctx.Stats.Commands)
			}
		})
	}
}

func TestWithoutPreloadAllModesHitGenuine(t *testing.T) {
	for _, mode := range []LinkMode{LinkDirect, LinkProcAddress, LinkDlopen} {
		t.Run(mode.String(), func(t *testing.T) {
			ln := NewLinker()
			gpu := gles.NewGPU(8, 8)
			if _, err := InstallGenuineGL(ln, gpu, nil); err != nil {
				t.Fatal(err)
			}
			fn, err := ResolveGL(ln, mode, "glClearColor")
			if err != nil {
				t.Fatal(err)
			}
			fn(gles.CmdClearColor(0, 1, 0, 1))
			if gpu.Ctx.ClearG != 1 {
				t.Fatal("genuine library did not execute the call")
			}
		})
	}
}

func TestResolveGLErrors(t *testing.T) {
	ln := NewLinker()
	if _, err := ResolveGL(ln, LinkDirect, "glClear"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("empty linker direct error = %v", err)
	}
	if _, err := ResolveGL(ln, LinkProcAddress, "glClear"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("empty linker gpa error = %v", err)
	}
	if _, err := ResolveGL(ln, LinkDlopen, "glClear"); !errors.Is(err, ErrUnknownLibrary) {
		t.Fatalf("empty linker dlopen error = %v", err)
	}
	if _, err := ResolveGL(ln, LinkMode(0), "glClear"); !errors.Is(err, ErrBadLinkMode) {
		t.Fatalf("bad mode error = %v", err)
	}
	// Wrong ABI behind a symbol.
	lib := NewLibrary(LibGLES)
	lib.Define("glClear", 42)
	lib.Define(SymGetProcAddress, 42)
	if err := ln.Register(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveGL(ln, LinkDirect, "glClear"); !errors.Is(err, ErrBadLinkMode) {
		t.Fatalf("wrong ABI error = %v", err)
	}
	if _, err := ResolveGL(ln, LinkProcAddress, "glClear"); !errors.Is(err, ErrBadLinkMode) {
		t.Fatalf("wrong gpa ABI error = %v", err)
	}
}

func TestProcAddressUnknownNameReturnsError(t *testing.T) {
	ln, _, _ := setupHookedProcess(t)
	if _, err := ResolveGL(ln, LinkProcAddress, "glNotARealCall"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("unknown proc name error = %v", err)
	}
}

func TestGLESLibraryCoversEveryOp(t *testing.T) {
	lib := NewGLESLibrary(LibGLES, func(gles.Command) {})
	for _, op := range gles.AllOps() {
		if _, ok := lib.Lookup(op.String()); !ok {
			t.Errorf("library missing symbol %s", op)
		}
	}
	// +1 for eglGetProcAddress.
	if got := len(lib.Symbols()); got != gles.NumOps()+1 {
		t.Fatalf("library has %d symbols, want %d", got, gles.NumOps()+1)
	}
}

func TestGLESLibrarySymbolStampsOp(t *testing.T) {
	var got gles.Command
	lib := NewGLESLibrary(LibGLES, func(cmd gles.Command) { got = cmd })
	v, _ := lib.Lookup("glDrawArrays")
	// Call through the symbol with a command that has the wrong Op set;
	// the symbol identity must win.
	v.(GLFunc)(gles.Command{Op: gles.OpClear, Ints: []int32{4, 0, 6}})
	if got.Op != gles.OpDrawArrays {
		t.Fatalf("symbol stamped op %v, want glDrawArrays", got.Op)
	}
}

func TestGenuineGLExecutesAndReportsErrors(t *testing.T) {
	ln := NewLinker()
	gpu := gles.NewGPU(4, 4)
	var errs []error
	if _, err := InstallGenuineGL(ln, gpu, func(err error) { errs = append(errs, err) }); err != nil {
		t.Fatal(err)
	}
	fn, err := ResolveGL(ln, LinkDirect, "glUseProgram")
	if err != nil {
		t.Fatal(err)
	}
	fn(gles.CmdUseProgram(42)) // unknown program -> driver error
	if len(errs) != 1 {
		t.Fatalf("driver errors = %v", errs)
	}
}

func TestInstallWrapperTwiceFails(t *testing.T) {
	ln, _, _ := setupHookedProcess(t)
	if _, err := InstallWrapper(ln, "libgbooster.so", func(gles.Command) {}); !errors.Is(err, ErrDuplicateLibrary) {
		t.Fatalf("double install error = %v", err)
	}
}
