package fleet_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/fleet"
	"github.com/gbooster/gbooster/internal/rudp"
)

func TestFleetSmoke(t *testing.T) {
	hub, leaves := rudp.NewMemHub(2, 0, 101)
	cfg := newFleetConfig()
	m, err := fleet.New(hub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	clients := make([]*testClient, 2)
	for i := range clients {
		clients[i] = newTestClient(leaves[i], hub.Addr(), uint64(i+1)<<32, fleet.DefaultCacheBytes)
		defer clients[i].close()
	}
	const frames = 5
	for f := 0; f < frames; f++ {
		for i, c := range clients {
			sent, err := c.sendFrame(float32(i) * 0.5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.recvFrame(10 * time.Second)
			if err != nil {
				t.Fatalf("client %d frame %d: %v", i, f, err)
			}
			if got != sent {
				t.Fatalf("client %d: reply seq %d for request %d", i, got, sent)
			}
		}
	}
	st := m.Stats()
	if st.Sessions != 2 || st.Admitted != 2 {
		t.Fatalf("sessions=%d admitted=%d, want 2/2", st.Sessions, st.Admitted)
	}
	if st.Frames != 2*frames {
		t.Fatalf("frames=%d, want %d", st.Frames, 2*frames)
	}
	if st.Gate.Entries != 2*frames {
		t.Fatalf("gate entries=%d, want %d", st.Gate.Entries, 2*frames)
	}
}

func TestFleetAdmissionOverCapacity(t *testing.T) {
	hub, leaves := rudp.NewMemHub(3, 0, 7)
	cfg := newFleetConfig()
	cfg.MaxSessions = 2
	cfg.IdleTimeout = 2 * time.Second
	m, err := fleet.New(hub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Two clients fill the fleet.
	admitted := make([]*testClient, 2)
	for i := range admitted {
		admitted[i] = newTestClient(leaves[i], hub.Addr(), uint64(i+1)<<32, fleet.DefaultCacheBytes)
		defer admitted[i].close()
		if _, err := admitted[i].sendFrame(0.3); err != nil {
			t.Fatal(err)
		}
		if _, err := admitted[i].recvFrame(10 * time.Second); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// A third is over capacity: its datagrams are dropped and counted,
	// no session exists for it, and it hears nothing back.
	late := newTestClient(leaves[2], hub.Addr(), 3<<32, fleet.DefaultCacheBytes)
	defer late.close()
	if _, err := late.sendFrame(0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := late.recvFrame(300 * time.Millisecond); !errors.Is(err, rudp.ErrTimeout) {
		t.Fatalf("over-capacity client got %v, want timeout", err)
	}
	st := m.Stats()
	if st.Sessions != 2 {
		t.Fatalf("sessions=%d, want the cap of 2", st.Sessions)
	}
	if st.Rejected == 0 {
		t.Fatal("over-capacity datagrams not counted in Stats.Rejected")
	}
	// Once the admitted sessions idle out, capacity frees and the late
	// client's own retransmissions get it admitted — no new dial needed.
	deadline := time.Now().Add(10 * time.Second)
	for m.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got, err := late.recvFrame(10 * time.Second); err != nil {
		t.Fatalf("late client after capacity freed: %v", err)
	} else if !late.ownSeq(got) {
		t.Fatalf("late client got foreign seq %d", got)
	}
}

func TestFleetDropsNonProtocolDatagrams(t *testing.T) {
	hub, leaves := rudp.NewMemHub(1, 0, 13)
	m, err := fleet.New(hub, newFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer leaves[0].Close()

	for _, junk := range [][]byte{
		[]byte("GET / HTTP/1.1"),
		{0x00, 0x01, 0x02},
		{0xB7}, // right magic, truncated header
	} {
		if _, err := leaves[0].WriteTo(junk, hub.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().NonProtocol < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("non-protocol datagrams counted %d/3", m.Stats().NonProtocol)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := m.Stats(); st.Sessions != 0 || st.Admitted != 0 {
		t.Fatalf("junk datagrams created sessions: %+v", st)
	}
}

// TestFleetCloseDuringAdmission races Close against a first-datagram
// admission. If admit registers a session after signalClose's shard
// sweep, nothing ever closes that session's conn: its goroutine parks
// in Recv for the full IdleTimeout (2 minutes at defaults) and
// Close/Wait stall behind it. With the done re-check under the shard
// lock, Close must return promptly on every phase of the race.
func TestFleetCloseDuringAdmission(t *testing.T) {
	iters := 50
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		hub, leaves := rudp.NewMemHub(1, 0, uint64(900+i))
		m, err := fleet.New(hub, newFleetConfig())
		if err != nil {
			t.Fatal(err)
		}
		c := newTestClient(leaves[0], hub.Addr(), 1<<32, fleet.DefaultCacheBytes)
		if _, err := c.sendFrame(0.5); err != nil {
			t.Fatal(err)
		}
		// Vary the phase between the datagram hitting the demux loop and
		// the close, so the sweep lands before, during, and after admit.
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		closed := make(chan struct{})
		go func() {
			_ = m.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(20 * time.Second):
			t.Fatalf("iter %d: Close stalled: session admitted past signalClose's sweep", i)
		}
		c.close()
	}
}

// TestFleetChurnSoak is the race-detector fleet soak: 64 concurrent
// sessions on one shared listener with churn — clients connect, stream,
// and either drain cleanly or crash mid-session — while every reply is
// checked against the receiving client's private sequence partition.
// One leaked message across sessions fails the test.
func TestFleetChurnSoak(t *testing.T) {
	workers, lives, frames := 64, 2, 6
	if testing.Short() {
		workers, lives, frames = 16, 2, 4
	}
	hub, leaves := rudp.NewMemHub(workers*lives, 0, 4040)
	cfg := newFleetConfig()
	cfg.MaxSessions = workers * lives
	// The idle timeout must dominate any inter-frame gap a loaded demux
	// can introduce: a session reaped between two frames of a live
	// client is unrecoverable (the replacement session's transport
	// state can't resync mid-stream), so reaping is for genuinely dead
	// peers only. 3s is still short enough to drain every crashed
	// incarnation within the test's deadline.
	cfg.IdleTimeout = 3 * time.Second
	m, err := fleet.New(hub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for life := 0; life < lives; life++ {
				// Every incarnation is a fresh session from a fresh
				// source address with its own sequence partition.
				leaf := leaves[w*lives+life]
				c := newTestClient(leaf, hub.Addr(), uint64(w*lives+life+1)<<32, fleet.DefaultCacheBytes)
				crash := (w+life)%3 == 0 // every third incarnation dies mid-stream
				for f := 0; f < frames; f++ {
					if _, err := c.sendFrame(float32(w%7) / 7); err != nil {
						errs <- fmt.Errorf("worker %d life %d send: %w", w, life, err)
						c.close()
						return
					}
					if crash && f == frames/2 {
						break // vanish without draining replies
					}
					got, err := c.recvFrame(30 * time.Second)
					if err != nil {
						errs <- fmt.Errorf("worker %d life %d recv %d: %w", w, life, f, err)
						c.close()
						return
					}
					if !c.ownSeq(got) {
						errs <- fmt.Errorf("worker %d life %d: LEAKED reply seq %#x", w, life, got)
						c.close()
						return
					}
				}
				c.close()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every crashed and drained session must idle-reap: the fleet
	// drains to zero sessions and its goroutines go with them.
	deadline := time.Now().Add(30 * time.Second)
	for m.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions never reaped", m.Sessions())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := m.Stats()
	if want := int64(workers * lives); st.Admitted != want {
		t.Fatalf("admitted %d sessions, want %d", st.Admitted, want)
	}
	if st.PeakSessions > int64(workers*lives) {
		t.Fatalf("peak %d above population %d", st.PeakSessions, workers*lives)
	}
	if st.TimersArmed != 0 {
		t.Fatalf("wheel still tracks %d reaped sessions", st.TimersArmed)
	}
	runtime.GC()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, baseline %d: session goroutines leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
