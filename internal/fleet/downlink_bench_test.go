package fleet_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/fleet"
)

// BenchmarkDownlinkServe measures the fleet's downlink over a real UDP
// socket pair — the configuration where syscall cost exists to be
// amortized, unlike the in-memory hub BenchmarkFleetServe uses. Each
// sub-benchmark reports datagrams/syscall for the egress path:
// batch=on runs the coalescing egress writer, batch=off the direct
// one-WriteTo-per-datagram path it replaced, so the pair quantifies the
// sendmmsg win at each fleet size. Frames are driven concurrently from
// every session, matching how a fleet actually loads the listener.
func BenchmarkDownlinkServe(b *testing.B) {
	for _, sessions := range []int{1, 64, 1024} {
		for _, batch := range []bool{true, false} {
			mode := "off"
			if batch {
				mode = "on"
			}
			b.Run(fmt.Sprintf("sessions=%d/batch=%s", sessions, mode), func(b *testing.B) {
				benchDownlinkServe(b, sessions, batch)
			})
		}
	}
}

func benchDownlinkServe(b *testing.B, sessions int, batched bool) {
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	lc, err := net.ListenUDP("udp", loop)
	if err != nil {
		b.Fatal(err)
	}
	lc.SetReadBuffer(8 << 20)  // best effort: absorb admission bursts
	lc.SetWriteBuffer(8 << 20) // and batched reply flushes
	cfg := newFleetConfig()
	cfg.MaxSessions = sessions
	cfg.IdleTimeout = time.Hour // never reap mid-bench
	if !batched {
		cfg.EgressBatch = -1
	}
	m, err := fleet.New(lc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	addr := lc.LocalAddr()

	clients := make([]*testClient, sessions)
	for i := range clients {
		pc, err := net.ListenUDP("udp", loop)
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = newTestClient(pc, addr, uint64(i+1)<<32, fleet.DefaultCacheBytes)
		defer clients[i].close()
	}

	// Warm every session concurrently — admission, keyframe, one delta
	// frame — so the measured loop sees only steady state.
	var wg sync.WaitGroup
	warmErr := make(chan error, sessions)
	for _, c := range clients {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := 0; w < 2; w++ {
				if _, err := c.sendFrame(0.25); err != nil {
					warmErr <- err
					return
				}
				if _, err := c.recvFrame(60 * time.Second); err != nil {
					warmErr <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-warmErr:
		b.Fatal(err)
	default:
	}
	if got := m.Sessions(); got != sessions {
		b.Fatalf("sessions admitted %d, want %d", got, sessions)
	}

	before := m.Stats()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	// b.N frames total, pulled from a shared counter by one goroutine
	// per session: every live session competes for the listener at
	// once, which is the load the egress writer exists to coalesce.
	for _, c := range clients {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, err := c.sendFrame(0.25); err != nil {
					b.Error(err)
					return
				}
				if _, err := c.recvFrame(60 * time.Second); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()

	st := m.Stats()
	if batched {
		dg := st.EgressDatagrams - before.EgressDatagrams
		sys := st.EgressSyscalls - before.EgressSyscalls
		if sys > 0 {
			b.ReportMetric(float64(dg)/float64(sys), "datagrams/syscall")
		}
		if drops := st.EgressDrops - before.EgressDrops; drops > 0 {
			b.ReportMetric(float64(drops)/float64(b.N), "egress-drops/op")
		}
	} else {
		// Direct path: every datagram is its own WriteTo syscall by
		// construction.
		b.ReportMetric(1.0, "datagrams/syscall")
	}
}
