package fleet

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"
)

// recordConn captures every WriteTo in arrival order, standing in for
// the listener so egress ordering can be asserted without kernel
// buffering in the way. The batched sender falls back to the portable
// loop on it, which is exactly the order-preserving path under test.
type recordConn struct {
	mu   sync.Mutex
	pkts [][]byte
	gate chan struct{} // nil = ungated; else every WriteTo blocks on it
}

func (c *recordConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	c.pkts = append(c.pkts, append([]byte(nil), p...))
	c.mu.Unlock()
	return len(p), nil
}

func (c *recordConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

func (c *recordConn) ReadFrom(p []byte) (int, net.Addr, error) {
	select {} // the egress path never reads
}
func (c *recordConn) Close() error                     { return nil }
func (c *recordConn) LocalAddr() net.Addr              { return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)} }
func (c *recordConn) SetDeadline(time.Time) error      { return nil }
func (c *recordConn) SetReadDeadline(time.Time) error  { return nil }
func (c *recordConn) SetWriteDeadline(time.Time) error { return nil }

// egressPayload tags a datagram with its producer and per-producer
// sequence number.
func egressPayload(producer, seq int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], uint32(producer))
	binary.BigEndian.PutUint32(b[4:], uint32(seq))
	return b[:]
}

// TestEgressOrderingUnderConcurrency hammers the egress queue from
// many producers — the shape of session goroutines, the demux pump's
// ACKs, and the wheel's retransmits all sharing one writer — and
// requires every producer's datagrams to reach the socket in that
// producer's send order with nothing lost. Run under -race this is
// also the egress writer's data-race gate.
func TestEgressOrderingUnderConcurrency(t *testing.T) {
	const producers, perProducer = 16, 512
	rec := &recordConn{}
	// Queue sized for the whole load: this test is about ordering, not
	// overflow (TestEgressOverflowDrops covers that).
	e := newEgressConn(rec, 16, producers*perProducer)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		e.drain()
	}()

	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := 0; seq < perProducer; seq++ {
				if _, err := e.WriteTo(egressPayload(p, seq), dst); err != nil {
					t.Errorf("producer %d seq %d: %v", p, seq, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for rec.count() < producers*perProducer && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.close()
	<-drained

	if got := rec.count(); got != producers*perProducer {
		_, _, _, drops := e.stats()
		t.Fatalf("delivered %d of %d datagrams (drops=%d)", got, producers*perProducer, drops)
	}
	next := make([]int, producers)
	for i, pkt := range rec.pkts {
		p := int(binary.BigEndian.Uint32(pkt[:4]))
		seq := int(binary.BigEndian.Uint32(pkt[4:]))
		if seq != next[p] {
			t.Fatalf("datagram %d: producer %d sent seq %d out of order (want %d)", i, p, seq, next[p])
		}
		next[p]++
	}

	datagrams, _, batches, drops := e.stats()
	if datagrams != producers*perProducer || drops != 0 {
		t.Fatalf("stats: datagrams=%d drops=%d, want %d and 0", datagrams, drops, producers*perProducer)
	}
	if batches <= 0 || batches > datagrams {
		t.Fatalf("stats: batches=%d out of range (datagrams=%d)", batches, datagrams)
	}
}

// TestEgressOverflowDrops wedges the socket so the queue fills, and
// checks overflow turns into counted drops — never a blocked caller —
// while the datagrams that did queue still arrive in order.
func TestEgressOverflowDrops(t *testing.T) {
	rec := &recordConn{gate: make(chan struct{})}
	e := newEgressConn(rec, 4, 8)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		e.drain()
	}()

	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	const total = 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := 0; seq < total; seq++ {
			// The drainer is wedged in WriteTo, so once the queue's 8
			// slots fill, the rest must drop without this loop ever
			// blocking.
			e.WriteTo(egressPayload(0, seq), dst)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteTo blocked on a full queue")
	}

	close(rec.gate) // unwedge the socket and let the survivors flush
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dg, _, _, drops := e.stats(); dg+drops == total {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.close()
	<-drained

	datagrams, _, _, drops := e.stats()
	if drops == 0 {
		t.Fatal("expected overflow drops with the socket wedged")
	}
	if datagrams+drops != total {
		t.Fatalf("datagrams=%d + drops=%d != %d sent", datagrams, drops, total)
	}
	last := -1
	for i, pkt := range rec.pkts {
		seq := int(binary.BigEndian.Uint32(pkt[4:]))
		if seq <= last {
			t.Fatalf("datagram %d: seq %d after %d — order broken across drops", i, seq, last)
		}
		last = seq
	}
}
