package fleet_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/fleet"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
)

// testClient speaks the full client uplink pipeline — GL command
// builders, wire encoding, mirrored command cache, inter-frame LZ4
// dictionary, message framing, reliable UDP — against a fleet session,
// with reusable buffers so the steady-state send path's allocations
// don't drown the server-side numbers the fleet bench gates on.
type testClient struct {
	conn  *rudp.Conn
	enc   *glwire.Encoder
	cache *cmdcache.Cache
	comp  *lz4.Compressor

	seqBase uint64
	seq     uint64
	cmds    [3]gles.Command
	encBuf  []byte
	wireBuf []byte
	msgBuf  []byte
}

// newTestClient dials a fleet listener from pc. seqBase partitions the
// frame sequence space per client so a reply leaking across sessions is
// detectable by its sequence number alone.
func newTestClient(pc net.PacketConn, peer net.Addr, seqBase uint64, cacheBytes int) *testClient {
	opts := rudp.DefaultOptions()
	return &testClient{
		conn:    rudp.New(pc, peer, opts),
		enc:     glwire.NewEncoder(nil),
		cache:   cmdcache.New(cacheBytes),
		comp:    lz4.NewCompressor(),
		seqBase: seqBase,
		seq:     seqBase,
	}
}

// sendFrame ships one complete rendering request (clear to a shade,
// swap) and returns the sequence number it carried.
func (c *testClient) sendFrame(shade float32) (uint64, error) {
	c.cmds[0] = gles.CmdClearColor(shade, shade, shade, 1)
	c.cmds[1] = gles.CmdClear(gles.ClearColorBit)
	c.cmds[2] = gles.CmdSwapBuffers()
	buf, err := c.enc.EncodeAll(c.encBuf[:0], c.cmds[:])
	c.encBuf = buf
	if err != nil {
		return 0, err
	}
	recs, err := glwire.SplitRecords(buf)
	if err != nil {
		return 0, err
	}
	wire, _, err := c.cache.EncodeAll(c.wireBuf[:0], recs)
	c.wireBuf = wire
	if err != nil {
		return 0, err
	}
	seq := c.seq
	c.seq++
	msg := append(c.msgBuf[:0], core.MsgFrameBatch)
	msg = binary.AppendUvarint(msg, seq)
	msg = c.comp.Compress(msg, wire)
	c.msgBuf = msg
	return seq, c.conn.Send(msg)
}

// recvFrame waits for one encoded-frame reply and returns its sequence
// number, verifying the message type on the way.
func (c *testClient) recvFrame(timeout time.Duration) (uint64, error) {
	msg, err := c.conn.Recv(timeout)
	if err != nil {
		return 0, err
	}
	if len(msg) < 2 || msg[0] != core.MsgEncodedFrame {
		return 0, fmt.Errorf("reply type %d (%d bytes), want encoded frame", msg[0], len(msg))
	}
	seq, n := binary.Uvarint(msg[1:])
	if n <= 0 {
		return 0, fmt.Errorf("reply carries no sequence number")
	}
	return seq, nil
}

// ownSeq reports whether seq belongs to this client's partition — the
// cross-session leakage check.
func (c *testClient) ownSeq(seq uint64) bool {
	return seq >= c.seqBase && seq < c.seq
}

func (c *testClient) close() { _ = c.conn.Close() }

// newFleetConfig is the shared small-resolution test config.
func newFleetConfig() fleet.Config {
	return fleet.Config{
		Width:  64,
		Height: 48,
	}
}
