package fleet_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/fleet"
	"github.com/gbooster/gbooster/internal/rudp"
)

// BenchmarkFleetServe measures the steady-state serve path — datagram
// demux, injection into per-session rudp state, gated render, encoded
// reply — as the session population grows 1 → 64 → 1024 on one shared
// listener. The numbers the fleet architecture must hold:
//
//   - ns/op (one frame served) roughly flat: a session's frame cost
//     must not grow with fleet size;
//   - allocs/op flat (±10%): the shared pools and injection path must
//     not introduce per-session steady-state allocation;
//   - goroutines/session O(1): one serve goroutine per session, zero
//     per-session transport goroutines (shared demux + timer wheel).
//
// The goroutines/session metric counts only fleet-side goroutines: the
// baseline is snapshotted after the bench clients (who run the legacy
// two-goroutine transport each) are fully constructed.
func BenchmarkFleetServe(b *testing.B) {
	for _, sessions := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchFleetServe(b, sessions)
		})
	}
}

func benchFleetServe(b *testing.B, sessions int) {
	hub, leaves := rudp.NewMemHub(sessions, 0, 99)
	cfg := newFleetConfig()
	cfg.MaxSessions = sessions
	cfg.IdleTimeout = time.Hour // never reap mid-bench
	m, err := fleet.New(hub, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	clients := make([]*testClient, sessions)
	for i := range clients {
		clients[i] = newTestClient(leaves[i], hub.Addr(), uint64(i+1)<<32, fleet.DefaultCacheBytes)
		defer clients[i].close()
	}
	runtime.GC()
	gBefore := runtime.NumGoroutine()

	// Warm every session concurrently: admission, keyframe, and one
	// delta frame, so the measured loop sees only steady state.
	var wg sync.WaitGroup
	warmErr := make(chan error, sessions)
	for _, c := range clients {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := 0; w < 2; w++ {
				if _, err := c.sendFrame(0.25); err != nil {
					warmErr <- err
					return
				}
				if _, err := c.recvFrame(60 * time.Second); err != nil {
					warmErr <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-warmErr:
		b.Fatal(err)
	default:
	}
	gAfter := runtime.NumGoroutine()
	if got := m.Sessions(); got != sessions {
		b.Fatalf("sessions admitted %d, want %d", got, sessions)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clients[i%sessions]
		if _, err := c.sendFrame(0.25); err != nil {
			b.Fatal(err)
		}
		if _, err := c.recvFrame(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(gAfter-gBefore)/float64(sessions), "goroutines/session")
}
