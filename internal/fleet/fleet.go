// Package fleet is the multi-tenant session runtime: one process, one
// UDP listener, thousands of concurrent GBooster sessions. Where the
// single-session path (gbooster.StreamServer) binds one socket and
// three goroutines to one client, the fleet Manager demultiplexes a
// shared listener by peer address onto per-session rudp state driven by
// injection (rudp.NewDemuxed / Conn.Inject — no per-connection read
// loop), drives every session's retransmission timer from one hashed
// timer wheel (no per-connection ticker), and schedules every session's
// renders through one bounded GPU gate (dispatch.Gate) so the shared
// backend batches work instead of thrashing. Admission control caps the
// session population: a datagram from an unknown peer beyond
// MaxSessions is dropped and counted rather than allocating toward OOM.
//
// Per session the steady-state footprint is one goroutine (the serve
// loop), one wheel slot while data is in flight, and the session's own
// render/cache state bounded by Config.CacheBytes.
package fleet

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gbooster/gbooster/internal/batchio"
	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/timeseries"
)

// Errors.
var (
	// ErrOverCapacity reports an admission refused because the manager
	// is already serving MaxSessions sessions. The refused peer's
	// datagrams are dropped (and counted in Stats.Rejected); a client
	// retrying after other sessions drain is admitted normally.
	ErrOverCapacity = errors.New("fleet: over capacity")
	// ErrClosed reports an operation on a closed manager.
	ErrClosed = errors.New("fleet: manager closed")
)

// Defaults.
const (
	// DefaultMaxSessions bounds the session population when Config
	// leaves MaxSessions zero.
	DefaultMaxSessions = 1024
	// DefaultIdleTimeout reaps a session with no inbound traffic.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultCacheBytes is the per-session mirrored command cache
	// budget. Deliberately far below cmdcache.DefaultCapacity: the
	// fleet's memory ceiling is MaxSessions * per-session budget, so
	// per-session generosity is what turns a session spike into an OOM.
	DefaultCacheBytes = 1 << 20
)

// numShards spreads the peer->session table so the demux loop's
// lookups don't serialize against session teardown. Power of two.
const numShards = 32

// Config parameterizes a Manager.
type Config struct {
	// Width, Height is the streaming resolution every session renders
	// at (must match the clients').
	Width, Height int
	// Quality is the turbo codec quality (0 = library default).
	Quality int
	// Parallelism is the per-session render worker degree. The fleet
	// default is 1 (serial per session): with many sessions the
	// parallelism worth having is across sessions, which the GPU gate
	// provides, and per-session worker fan-out would multiply into
	// sessions x workers threads.
	Parallelism int
	// DiffThreshold is the encoder's changed-tile sensitivity
	// (0 = library default, negative = exact).
	DiffThreshold float64
	// AdaptiveQuality enables each session's congestion-aware quality
	// ladder (Quality becomes the ceiling); QualityFloor is the
	// ladder's lower bound (0 = core.DefaultQualityFloor).
	AdaptiveQuality bool
	QualityFloor    int
	// CacheBytes bounds each session's mirrored command cache
	// (0 = DefaultCacheBytes).
	CacheBytes int
	// MaxSessions is the admission cap (0 = DefaultMaxSessions).
	MaxSessions int
	// GateWidth bounds concurrent renders across all sessions:
	// 0 = GOMAXPROCS, negative = unlimited.
	GateWidth int
	// IdleTimeout reaps sessions with no inbound traffic
	// (0 = DefaultIdleTimeout).
	IdleTimeout time.Duration
	// WheelTick is the shared retransmission wheel's resolution
	// (0 = rudp.DefaultWheelTick).
	WheelTick time.Duration
	// EgressBatch selects the coalescing egress writer: 0 enables it
	// with DefaultEgressBatch, a positive value sets the per-flush
	// batch, and a negative value disables it so every send is a
	// direct WriteTo on the listener (the pre-batching behavior).
	EgressBatch int
	// EgressQueue bounds the egress FIFO in datagrams
	// (0 = DefaultEgressQueue). A full queue drops rather than blocks;
	// rudp retransmission recovers the loss.
	EgressQueue int
	// Transport overrides the per-session rudp options; the zero value
	// selects rudp.DefaultOptions.
	Transport rudp.Options
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	switch {
	case c.GateWidth == 0:
		c.GateWidth = runtime.GOMAXPROCS(0)
	case c.GateWidth < 0:
		c.GateWidth = 0 // dispatch.Gate: 0 = unlimited
	}
	if c.EgressBatch == 0 {
		c.EgressBatch = DefaultEgressBatch
	}
	if c.EgressQueue <= 0 {
		c.EgressQueue = DefaultEgressQueue
	}
	if (c.Transport == rudp.Options{}) {
		c.Transport = rudp.DefaultOptions()
	}
	return c
}

// Stats is a point-in-time fleet snapshot. Admitted/Rejected/
// NonProtocol/Frames are cumulative; Sessions and TimersArmed are
// instantaneous.
type Stats struct {
	// Sessions is the live session count; PeakSessions the high-water
	// mark since the manager started.
	Sessions, PeakSessions int64
	// Admitted counts sessions ever admitted; Rejected datagrams
	// dropped because admission was over capacity; NonProtocol
	// datagrams dropped for not carrying the protocol magic.
	Admitted, Rejected, NonProtocol int64
	// Frames counts rendering requests served across all sessions.
	Frames int64
	// TimersArmed is how many sessions currently occupy a slot on the
	// shared retransmission wheel (in-flight data only).
	TimersArmed int
	// Gate is the shared GPU gate's occupancy and contention.
	Gate dispatch.GateStats
	// EgressDatagrams/EgressSyscalls are the coalescing egress
	// writer's cumulative output and the syscalls it spent producing
	// it (their ratio is the achieved datagrams-per-syscall);
	// EgressBatches counts drain flushes and EgressDrops datagrams
	// shed by a full egress queue. All zero when EgressBatch < 0.
	EgressDatagrams, EgressSyscalls, EgressBatches, EgressDrops int64
	// FrameRate is the last sampled fleet-wide render rate
	// (frames/second across all sessions); ForecastFrameRate is the
	// online ARMA model's prediction of that rate sampleForecastHorizon
	// samples ahead — a leading indicator for capacity decisions (gate
	// width, admission headroom). Both zero until the first sample.
	FrameRate, ForecastFrameRate float64
}

// session is one admitted client: its demuxed transport state and its
// private render/cache/codec state. srv is nil until the peer's first
// complete framed message (lazy allocation — see admit) and is touched
// only by the session's own runSession goroutine.
type session struct {
	key  string
	conn *rudp.Conn
	srv  *core.Server
}

// newSessionServer builds one session's render/codec/cache state.
func (m *Manager) newSessionServer() (*core.Server, error) {
	return core.NewServer(core.ServerConfig{
		Width:           m.cfg.Width,
		Height:          m.cfg.Height,
		Quality:         m.cfg.Quality,
		CacheBytes:      m.cfg.CacheBytes,
		Parallelism:     m.cfg.Parallelism,
		DiffThreshold:   m.cfg.DiffThreshold,
		PipelineDepth:   -1, // sessions are serial; overlap comes from the fleet
		AdaptiveQuality: m.cfg.AdaptiveQuality,
		QualityFloor:    m.cfg.QualityFloor,
	})
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// Manager serves a fleet of sessions on one shared PacketConn.
type Manager struct {
	cfg    Config
	pc     net.PacketConn
	tx     net.PacketConn // what sessions write to: egress when enabled, else pc
	egress *egressConn    // nil when Config.EgressBatch < 0
	wheel  *rudp.Wheel
	gate   *dispatch.Gate

	shards [numShards]shard

	count    atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	nonProto atomic.Int64
	frames   atomic.Int64

	// Frame-rate sampler: once per sampleInterval the delta of frames
	// becomes a frames/second observation for an online ARMA model,
	// whose forecast feeds Stats.ForecastFrameRate (guarded by rateMu).
	rateMu       sync.Mutex
	rateModel    *timeseries.Model
	rate         float64
	rateForecast float64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New starts a manager demultiplexing pc. The manager owns pc and
// closes it on Close.
func New(pc net.PacketConn, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("fleet: resolution %dx%d", cfg.Width, cfg.Height)
	}
	m := &Manager{
		cfg:   cfg,
		pc:    pc,
		wheel: rudp.NewWheel(cfg.WheelTick, 2*cfg.MaxSessions),
		gate:  dispatch.NewGate(cfg.GateWidth),
		done:  make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*session)
	}
	m.tx = pc
	if cfg.EgressBatch > 0 {
		m.egress = newEgressConn(pc, cfg.EgressBatch, cfg.EgressQueue)
		m.tx = m.egress
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.egress.drain()
		}()
	}
	// ARMA(2,1): enough memory to track ramp-ups without chasing noise.
	// NewARMAX only fails on negative orders, so the error is impossible
	// here; a nil model simply disables forecasting.
	m.rateModel, _ = timeseries.NewARMAX(2, 1, 0, 0)
	m.wg.Add(1)
	go m.demuxLoop()
	m.wg.Add(1)
	go m.sampleLoop()
	return m, nil
}

// sampleInterval is the frame-rate sampler's cadence;
// sampleForecastHorizon how many samples ahead the published forecast
// looks (5 s — the fleet-scale analog of the session controller's
// 500 ms horizon, matched to how fast a session population shifts).
const (
	sampleInterval        = time.Second
	sampleForecastHorizon = 5
)

// sampleLoop turns the cumulative frame counter into a frames/second
// series and keeps the fleet's rate forecast current.
func (m *Manager) sampleLoop() {
	defer m.wg.Done()
	t := time.NewTicker(sampleInterval)
	defer t.Stop()
	var last int64
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			now := m.frames.Load()
			rate := float64(now-last) / sampleInterval.Seconds()
			last = now
			m.rateMu.Lock()
			m.rate = rate
			if m.rateModel != nil {
				_ = m.rateModel.Observe(rate, nil)
				if f := m.rateModel.Forecast(sampleForecastHorizon); f > 0 {
					m.rateForecast = f
				} else {
					m.rateForecast = 0
				}
			}
			m.rateMu.Unlock()
		}
	}
}

// Sessions returns the live session count.
func (m *Manager) Sessions() int { return int(m.count.Load()) }

// Stats returns a fleet snapshot.
func (m *Manager) Stats() Stats {
	st := Stats{
		Sessions:     m.count.Load(),
		PeakSessions: m.peak.Load(),
		Admitted:     m.admitted.Load(),
		Rejected:     m.rejected.Load(),
		NonProtocol:  m.nonProto.Load(),
		Frames:       m.frames.Load(),
		TimersArmed:  m.wheel.Len(),
		Gate:         m.gate.Stats(),
	}
	if m.egress != nil {
		st.EgressDatagrams, st.EgressSyscalls, st.EgressBatches, st.EgressDrops = m.egress.stats()
	}
	m.rateMu.Lock()
	st.FrameRate, st.ForecastFrameRate = m.rate, m.rateForecast
	m.rateMu.Unlock()
	return st
}

// Wait blocks until the manager shuts down (Close, or the listener
// dying under it) and every session has drained.
func (m *Manager) Wait() {
	<-m.done
	m.wg.Wait()
}

// Close shuts the fleet down: the listener, every session, the wheel.
// It blocks until all session goroutines exit and is idempotent.
func (m *Manager) Close() error {
	m.signalClose()
	m.wg.Wait()
	m.wheel.Close()
	return nil
}

// signalClose makes every blocking path in the manager return: the
// demux loop (listener closed), each session loop (its conn closed),
// and gate waiters (done closed). Unlike Close it does not wait, so
// the demux loop itself may call it on a fatal socket error.
func (m *Manager) signalClose() {
	m.closeOnce.Do(func() {
		close(m.done)
		if m.egress != nil {
			m.egress.close()
		}
		_ = m.pc.Close()
		for i := range m.shards {
			sh := &m.shards[i]
			sh.mu.Lock()
			for _, s := range sh.m {
				_ = s.conn.Close()
			}
			sh.mu.Unlock()
		}
	})
}

// fnv1a hashes a peer key onto a shard.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *Manager) shardFor(key string) *shard {
	return &m.shards[fnv1a(key)&(numShards-1)]
}

func (m *Manager) lookup(key string) *session {
	sh := m.shardFor(key)
	sh.mu.RLock()
	s := sh.m[key]
	sh.mu.RUnlock()
	return s
}

// demuxLoop is the fleet's single inbound pump: it reads the shared
// listener and routes each datagram to its session by source address —
// the validation the single-session readLoop does per connection
// happens here structurally, because routing *is* source matching. A
// datagram from an unknown peer is an admission request; one without
// the protocol magic is dropped before it can allocate anything.
//
// This goroutine must never block on a session: Conn.Inject refuses
// (rather than queues or waits on) data its Recv queue can't absorb,
// so a session whose consumer is stalled — even one wedged in Send
// waiting for window space only our ACK delivery can free — slows
// only itself while the pump keeps serving the other sessions.
func (m *Manager) demuxLoop() {
	defer m.wg.Done()
	// A real UDP listener drains whole bursts per recvmmsg; anything
	// else (netsim hubs, in-memory conns) keeps the one-ReadFrom-per-
	// datagram shape under the same loop.
	rx := batchio.NewReceiver(m.pc)
	nbufs := 1
	if rx.FastPath() {
		nbufs = demuxReadBatch
	}
	bufs := make([][]byte, nbufs)
	for i := range bufs {
		bufs[i] = make([]byte, 65536)
	}
	sizes := make([]int, nbufs)
	addrs := make([]net.Addr, nbufs)
	for {
		select {
		case <-m.done:
			return
		default:
		}
		_ = m.pc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		k, err := rx.Recv(bufs, sizes, addrs)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Listener gone: tear the fleet down rather than spin.
			m.signalClose()
			return
		}
		for i := 0; i < k; i++ {
			m.route(bufs[i][:sizes[i]], addrs[i])
		}
	}
}

// demuxReadBatch is how many datagrams one recvmmsg may surface; the
// pump's buffer footprint is demuxReadBatch * 64 KiB.
const demuxReadBatch = 32

// route delivers one inbound datagram: drop non-protocol traffic,
// admit unknown peers, inject into the session's demuxed conn. Inject
// never blocks (it refuses what the session's Recv queue can't hold),
// so a burst drained by one batched read can't stall the pump either.
func (m *Manager) route(pkt []byte, from net.Addr) {
	if from == nil || !rudp.IsProtocolDatagram(pkt) {
		m.nonProto.Add(1)
		return
	}
	key := from.String()
	s := m.lookup(key)
	if s == nil {
		var err error
		s, err = m.admit(from, key)
		if err != nil {
			return // counted inside admit
		}
	}
	s.conn.Inject(pkt)
}

// admit creates and registers a session for a new peer, enforcing the
// MaxSessions cap. The session's serve goroutine starts here. Only
// transport state is allocated at admission: the heavy render/codec/
// cache server is built lazily in runSession once the peer completes a
// full framed message, so a single spoofed-source datagram costs the
// fleet a Conn, not a core.Server (see DESIGN.md §13 on the residual
// capacity exposure).
func (m *Manager) admit(peer net.Addr, key string) (*session, error) {
	if m.count.Load() >= int64(m.cfg.MaxSessions) {
		m.rejected.Add(1)
		return nil, ErrOverCapacity
	}
	s := &session{
		key: key,
		// Sessions write through m.tx: with the egress writer enabled
		// that queues every reply, ACK, and wheel retransmit for
		// batched sends instead of hitting the socket one syscall per
		// datagram.
		conn: rudp.NewDemuxed(m.tx, peer, m.cfg.Transport, m.wheel),
	}
	sh := m.shardFor(key)
	sh.mu.Lock()
	select {
	case <-m.done:
		// A concurrent Close may already have swept this shard;
		// registering now would leave a session signalClose never
		// closes, parking its goroutine in Recv until IdleTimeout and
		// stalling Close/Wait that whole time. The shard lock orders
		// this check against the sweep: either the sweep sees our entry,
		// or we see done closed.
		sh.mu.Unlock()
		_ = s.conn.Close()
		return nil, ErrClosed
	default:
	}
	sh.m[key] = s
	sh.mu.Unlock()
	n := m.count.Add(1)
	for {
		p := m.peak.Load()
		if n <= p || m.peak.CompareAndSwap(p, n) {
			break
		}
	}
	m.admitted.Add(1)
	// The demux goroutine is itself in wg, so the counter can't hit
	// zero between this Add and a concurrent Close's Wait.
	m.wg.Add(1)
	go m.runSession(s)
	return s, nil
}

// runSession is a session's whole life: receive, render under the GPU
// gate, reply; reap on idle, close, or protocol violation. One
// goroutine — the transport work (retransmit timers, inbound datagrams)
// lives on the shared wheel and demux loop.
func (m *Manager) runSession(s *session) {
	defer m.wg.Done()
	defer m.drop(s)
	for {
		msg, err := s.conn.Recv(m.cfg.IdleTimeout)
		if err != nil {
			return // closed, or idle past the reap deadline
		}
		if s.srv == nil {
			// First complete framed message: the peer has proven it
			// speaks the protocol end to end, so now pay for the render/
			// codec/cache state. Admission alone (one datagram bearing
			// the magic, source trivially spoofable) buys only the
			// session's transport state.
			srv, err := m.newSessionServer()
			if err != nil {
				return
			}
			s.srv = srv
		}
		if !m.gate.Enter(m.done) {
			return // manager shutting down while queued for the GPU
		}
		reply, err := s.srv.Handle(msg)
		m.gate.Leave()
		if err != nil {
			return // protocol violation: drop the session, not the fleet
		}
		// Sample the transport for the adaptive-quality ladder (no-op
		// unless configured). The single-session serve loops do this
		// internally; this loop drives the server through Handle, so the
		// sampling hook is explicit here.
		s.srv.AdaptQuality(s.conn)
		m.frames.Add(1)
		if reply != nil {
			if err := s.conn.Send(reply); err != nil {
				return
			}
		}
		// Recycle the delivered message; bootstrap payloads stay out of
		// the pool because the restored session state aliases them.
		if len(msg) > 0 && msg[0] != core.MsgBootstrap {
			s.conn.Release(msg)
		}
	}
}

// drop deregisters and closes a session. The shard entry is removed
// only if it still names this session, so a peer readmitted after an
// idle reap can't be torn down by its predecessor's goroutine.
func (m *Manager) drop(s *session) {
	sh := m.shardFor(s.key)
	sh.mu.Lock()
	if sh.m[s.key] == s {
		delete(sh.m, s.key)
	}
	sh.mu.Unlock()
	_ = s.conn.Close()
	m.count.Add(-1)
}
