package fleet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gbooster/gbooster/internal/batchio"
)

// Egress defaults.
const (
	// DefaultEgressBatch is how many queued datagrams one drain flush
	// hands to batchio when Config.EgressBatch is zero.
	DefaultEgressBatch = batchio.MaxBatch
	// DefaultEgressQueue bounds the egress FIFO, in datagrams, when
	// Config.EgressQueue is zero. At the default rudp payload size the
	// queue tops out around 5 MB — bounded backlog, not bounded loss:
	// overflow drops are recovered by rudp retransmission.
	DefaultEgressQueue = 4096
)

// egressConn is the fleet's coalescing downlink writer: the PacketConn
// handed to every demuxed session conn, so session replies, the demux
// pump's ACKs, and the shared wheel's retransmits all funnel into one
// bounded FIFO that a single drainer flushes through batchio.Sender.
// Under load the queue runs deep and each flush moves a whole batch per
// syscall; idle, a lone ACK still leaves on the next drainer wakeup —
// there is no flush timer to add latency.
//
// WriteTo never blocks: a full queue drops the datagram (counted in
// drops) and leans on the reliability layer, because its callers — the
// demux pump delivering inbound data, the wheel's timer goroutine —
// must never stall on a slow socket. The single FIFO preserves global
// enqueue order, so per-peer datagram order is exactly what a direct
// WriteTo interleaving would give.
type egressConn struct {
	pc     net.PacketConn
	sender *batchio.Sender
	batch  int

	mu     sync.Mutex
	ring   []batchio.Datagram // FIFO: n entries starting at head
	head   int
	n      int
	free   [][]byte // recycled payload buffers, guarded by mu
	closed bool
	notify chan struct{} // 1-buffered drainer wakeup

	batches atomic.Int64
	drops   atomic.Int64
}

func newEgressConn(pc net.PacketConn, batch, queue int) *egressConn {
	if batch <= 0 {
		batch = DefaultEgressBatch
	}
	if queue <= 0 {
		queue = DefaultEgressQueue
	}
	return &egressConn{
		pc:     pc,
		sender: batchio.NewSender(pc),
		batch:  batch,
		ring:   make([]batchio.Datagram, queue),
		notify: make(chan struct{}, 1),
	}
}

// WriteTo copies p into a pooled buffer and queues it for the drainer.
// The copy is the price of not blocking the caller: rudp reuses its
// send scratch the moment WriteTo returns.
func (e *egressConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	if e.n == len(e.ring) {
		e.mu.Unlock()
		e.drops.Add(1)
		return len(p), nil // dropped like any congested link; rudp recovers
	}
	buf := e.getBufLocked()
	buf = append(buf[:0], p...)
	e.ring[(e.head+e.n)%len(e.ring)] = batchio.Datagram{Buf: buf, Addr: addr}
	e.n++
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
	return len(p), nil
}

// drain is the single egress goroutine: pop up to batch datagrams in
// FIFO order, flush them through one batched send, recycle the buffers.
func (e *egressConn) drain() {
	scratch := make([]batchio.Datagram, 0, e.batch)
	for {
		e.mu.Lock()
		k := e.n
		if k > e.batch {
			k = e.batch
		}
		scratch = scratch[:0]
		for i := 0; i < k; i++ {
			scratch = append(scratch, e.ring[(e.head+i)%len(e.ring)])
		}
		e.head = (e.head + k) % len(e.ring)
		e.n -= k
		closed := e.closed
		e.mu.Unlock()

		if k == 0 {
			if closed {
				return
			}
			<-e.notify
			continue
		}
		sent, err := e.sender.Send(scratch)
		if sent == len(scratch) {
			e.batches.Add(1)
		} else {
			e.drops.Add(int64(len(scratch) - sent))
		}
		e.mu.Lock()
		for i := range scratch {
			e.putBufLocked(scratch[i].Buf)
			scratch[i] = batchio.Datagram{}
		}
		e.mu.Unlock()
		if err != nil {
			if closed {
				return
			}
			// The socket is failing under us (commonly: shutdown racing
			// this flush). Don't spin hot; the demux loop sees the same
			// error and tears the fleet down.
			time.Sleep(time.Millisecond)
		}
	}
}

// close stops accepting datagrams and lets the drainer flush what's
// queued and exit.
func (e *egressConn) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// stats snapshots the egress counters: datagrams and syscalls from the
// batched sender, flush and drop counts from the queue.
func (e *egressConn) stats() (datagrams, syscalls, batches, drops int64) {
	st := e.sender.Stats()
	return st.Datagrams, st.Syscalls, e.batches.Load(), e.drops.Load()
}

func (e *egressConn) getBufLocked() []byte {
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free = e.free[:n-1]
		return b
	}
	return nil
}

func (e *egressConn) putBufLocked(b []byte) {
	if cap(b) == 0 {
		return
	}
	if len(e.free) < len(e.ring) {
		e.free = append(e.free, b[:0])
	}
}

// The rest of net.PacketConn, so egressConn can stand in for the
// listener in rudp.NewDemuxed. Close is a no-op — the listener is
// shared and its lifecycle belongs to the Manager.
func (e *egressConn) ReadFrom(p []byte) (int, net.Addr, error) { return e.pc.ReadFrom(p) }
func (e *egressConn) Close() error                             { return nil }
func (e *egressConn) LocalAddr() net.Addr                      { return e.pc.LocalAddr() }
func (e *egressConn) SetDeadline(t time.Time) error            { return e.pc.SetDeadline(t) }
func (e *egressConn) SetReadDeadline(t time.Time) error        { return e.pc.SetReadDeadline(t) }
func (e *egressConn) SetWriteDeadline(t time.Time) error       { return e.pc.SetWriteDeadline(t) }
