package gbooster

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestPlayerOverRealUDPLoopback(t *testing.T) {
	// Probe loopback UDP availability first (sandboxes may deny it).
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	const w, h = 96, 64
	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP(addr) }()
	defer func() { _ = srv.Close() }()
	time.Sleep(100 * time.Millisecond)

	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()
	if err := player.Connect(addr); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 8; f++ {
		img, err := player.StepFrame(10 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
			t.Fatalf("bounds %v", img.Bounds())
		}
	}
	st := player.Stats()
	if st.FramesSent != 8 || st.FramesShown != 8 || st.WireBytes == 0 {
		t.Fatalf("stats sent=%d shown=%d wire=%d", st.FramesSent, st.FramesShown, st.WireBytes)
	}
	th := player.TransportStats()
	if len(th) != 1 {
		t.Fatalf("transport health entries = %d, want 1", len(th))
	}
	if th[0].DataSent == 0 || th[0].WindowLimit == 0 {
		t.Fatalf("transport health not populated: %+v", th[0])
	}
	// Loopback is lossless: the adaptive estimator must have locked on
	// and nothing should have needed a retransmission.
	if th[0].SRTT <= 0 || th[0].RTO <= 0 {
		t.Fatalf("estimator produced no sample: %+v", th[0])
	}
	if th[0].ResendRate != 0 {
		t.Fatalf("lossless loopback resent data: %+v", th[0])
	}
	if st, ok := srv.TransportStats(); !ok || st.DataSent == 0 {
		t.Fatalf("server transport stats = %+v ok=%v", st, ok)
	}
	select {
	case err := <-serverErr:
		t.Fatalf("server exited early: %v", err)
	default:
	}
}

// TestServeUDPCloseBeforeClient is the regression test for the
// listening-socket leak: Close on a server still waiting for its first
// client must close the listener and unblock ServeUDP promptly, not
// leave the socket open until the accept deadline.
func TestServeUDPCloseBeforeClient(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	srv, err := NewStreamServer(StreamServerConfig{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP(addr) }()
	time.Sleep(100 * time.Millisecond) // let ServeUDP bind and block
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-serverErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("ServeUDP after Close = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP still blocked after Close")
	}
	// The port is actually released.
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	_ = pc.Close()
}
