package gbooster

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestPlayerOverRealUDPLoopback(t *testing.T) {
	// Probe loopback UDP availability first (sandboxes may deny it).
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	const w, h = 96, 64
	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP(addr) }()
	defer func() { _ = srv.Close() }()
	time.Sleep(100 * time.Millisecond)

	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()
	if err := player.Connect(addr); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 8; f++ {
		img, err := player.StepFrame(10 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
			t.Fatalf("bounds %v", img.Bounds())
		}
	}
	st := player.Stats()
	if st.FramesSent != 8 || st.FramesShown != 8 || st.WireBytes == 0 {
		t.Fatalf("stats sent=%d shown=%d wire=%d", st.FramesSent, st.FramesShown, st.WireBytes)
	}
	th := player.TransportStats()
	if len(th) != 1 {
		t.Fatalf("transport health entries = %d, want 1", len(th))
	}
	if th[0].DataSent == 0 || th[0].WindowLimit == 0 {
		t.Fatalf("transport health not populated: %+v", th[0])
	}
	// Loopback is lossless: the adaptive estimator must have locked on
	// and nothing should have needed a retransmission.
	if th[0].SRTT <= 0 || th[0].RTO <= 0 {
		t.Fatalf("estimator produced no sample: %+v", th[0])
	}
	if th[0].ResendRate != 0 {
		t.Fatalf("lossless loopback resent data: %+v", th[0])
	}
	if st, ok := srv.TransportStats(); !ok || st.DataSent == 0 {
		t.Fatalf("server transport stats = %+v ok=%v", st, ok)
	}
	select {
	case err := <-serverErr:
		t.Fatalf("server exited early: %v", err)
	default:
	}
}

// TestServeUDPIgnoresGarbageFirstDatagram is the regression test for
// the peer-adoption bug: ServeUDP used to lock the session to whatever
// peer sent the first datagram, protocol or not, so a single stray UDP
// packet (port scan, misdirected traffic) bound the session to the
// wrong address and stranded the real client. Now the accept path
// requires the GBooster magic before adopting a peer.
func TestServeUDPIgnoresGarbageFirstDatagram(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	const w, h = 96, 64
	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP(addr) }()
	defer func() { _ = srv.Close() }()
	time.Sleep(100 * time.Millisecond)

	// A non-client lands junk on the listener first: an HTTP-ish probe
	// and a short burst of noise, none carrying the protocol magic.
	scanner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, junk := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0x00},
		{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8, 0xf7, 0xf6, 0xf5},
	} {
		if _, err := scanner.WriteTo(junk, raddr); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)

	// The real client connects afterwards and must still get a working
	// session: before the fix the scanner owned the peer slot by now.
	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()
	if err := player.Connect(addr); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if _, err := player.StepFrame(10 * time.Second); err != nil {
			t.Fatalf("frame %d after garbage first datagram: %v", f, err)
		}
	}
	select {
	case err := <-serverErr:
		t.Fatalf("server exited early: %v", err)
	default:
	}
}

// TestServeUDPAcceptDeadlineIsTotal is the regression test for the
// deadline accounting bug: rejected non-protocol datagrams must not
// re-arm the accept deadline, so a trickle of junk cannot keep a
// clientless listener alive forever. With a 300ms total budget and junk
// arriving every 100ms, ServeUDP must still give up on time.
func TestServeUDPAcceptDeadlineIsTotal(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	srv, err := NewStreamServer(StreamServerConfig{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	srv.acceptTimeout = 300 * time.Millisecond

	serverErr := make(chan error, 1)
	start := time.Now()
	go func() { serverErr <- srv.ServeUDP(addr) }()
	time.Sleep(50 * time.Millisecond)

	scanner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Junk arrives faster than the old per-datagram deadline would
	// expire; under per-datagram accounting this loop would keep
	// ServeUDP alive indefinitely.
	stopJunk := make(chan struct{})
	defer close(stopJunk)
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopJunk:
				return
			case <-tick.C:
				_, _ = scanner.WriteTo([]byte("junk"), raddr)
			}
		}
	}()

	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("ServeUDP returned nil; junk datagram accepted as client")
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("accept deadline took %v; junk re-armed the timer", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeUDP never timed out: rejected datagrams re-arm the accept deadline")
	}
}

// TestServeUDPCloseBeforeClient is the regression test for the
// listening-socket leak: Close on a server still waiting for its first
// client must close the listener and unblock ServeUDP promptly, not
// leave the socket open until the accept deadline.
func TestServeUDPCloseBeforeClient(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	srv, err := NewStreamServer(StreamServerConfig{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP(addr) }()
	time.Sleep(100 * time.Millisecond) // let ServeUDP bind and block
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-serverErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("ServeUDP after Close = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP still blocked after Close")
	}
	// The port is actually released.
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	_ = pc.Close()
}
