// Package gbooster is a reproduction of "GBooster: Towards Acceleration
// of GPU-Intensive Mobile Applications" (Wen et al., ICDCS 2017): a
// system that transparently offloads a mobile application's OpenGL ES
// rendering to nearby multimedia devices, switching between Bluetooth
// and WiFi with an ARMAX traffic forecaster and aggregating multiple
// service devices.
//
// The package offers two entry points:
//
//   - The simulation API (SimulateLocal / SimulateOffload) runs
//     calibrated gameplay sessions in virtual time on the paper's
//     device and workload catalog, producing the §VII metrics (median
//     FPS, FPS stability, response time, energy).
//
//   - The streaming API (StreamServer / Player) runs the real data
//     plane — linker-hooked interception, wire serialization, command
//     caching, LZ4, reliable UDP, software-GPU rendering, turbo frame
//     coding — over actual sockets or in-memory links.
package gbooster

import (
	"errors"
	"fmt"
	"time"

	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/pipeline"
	"github.com/gbooster/gbooster/internal/workload"
)

// API errors.
var (
	ErrUnknownWorkload = errors.New("gbooster: unknown workload")
	ErrUnknownDevice   = errors.New("gbooster: unknown device")
	ErrBadOptions      = errors.New("gbooster: invalid options")
)

// WorkloadInfo describes one catalog application (Table II / III).
type WorkloadInfo struct {
	ID            string
	Name          string
	Genre         string
	PackageSizeGB float64
}

// Workloads lists the evaluation applications: games G1–G6 and
// non-gaming apps A1–A3.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, p := range workload.Games() {
		out = append(out, WorkloadInfo{ID: p.ID, Name: p.Name, Genre: p.Genre.String(), PackageSizeGB: p.PackageSizeGB})
	}
	for _, p := range workload.Apps() {
		out = append(out, WorkloadInfo{ID: p.ID, Name: p.Name, Genre: p.Genre.String()})
	}
	return out
}

// Phones lists the user-device catalog names.
func Phones() []string { return []string{"nexus5", "lgg4", "lgg5"} }

// ServiceDevices lists the service-device catalog names.
func ServiceDevices() []string { return []string{"shield", "minix", "m4600", "optiplex"} }

// Options configures a simulated session.
type Options struct {
	// Workload is a catalog ID (G1..G6, A1..A3).
	Workload string
	// Phone is the user device ("nexus5", "lgg4", "lgg5").
	Phone string
	// Services are service-device names; at least one for offloading.
	Services []string
	// Duration of the session (default 15 minutes, the paper's
	// protocol; energy experiments use shorter cooled sessions).
	Duration time.Duration
	// Seed fixes all randomness.
	Seed uint64
	// DisableSwitching keeps WiFi always on (the Fig. 6(b) ablation).
	DisableSwitching bool
	// BlockingSwapBuffer disables the §VI-A rewrite, limiting the
	// pipeline to one request in flight.
	BlockingSwapBuffer bool
}

// Result carries one session's user-experience and energy metrics.
type Result struct {
	// MedianFPS is the median of per-second frame rates.
	MedianFPS float64
	// FPSStability is the fraction of the session within ±20% of the
	// median FPS.
	FPSStability float64
	// AvgResponse is the Eq. 5 response time.
	AvgResponse time.Duration
	// EnergyJoules is total user-device energy; AvgPowerW the mean
	// draw.
	EnergyJoules float64
	AvgPowerW    float64
	// CPUUtil is the reported whole-app CPU usage (§VII-G).
	CPUUtil float64
	// WiFiOnFraction is the share of the session with WiFi powered
	// (offload only).
	WiFiOnFraction float64
}

func (o Options) pipelineConfig() (pipeline.Config, error) {
	if o.Workload == "" {
		return pipeline.Config{}, fmt.Errorf("%w: no workload", ErrBadOptions)
	}
	prof, err := workload.ByID(o.Workload)
	if err != nil {
		return pipeline.Config{}, fmt.Errorf("%w: %q", ErrUnknownWorkload, o.Workload)
	}
	phone := o.Phone
	if phone == "" {
		phone = "nexus5"
	}
	user, err := device.UserDeviceByName(phone)
	if err != nil {
		return pipeline.Config{}, fmt.Errorf("%w: %q", ErrUnknownDevice, phone)
	}
	cfg := pipeline.Config{
		Profile:  prof,
		User:     user,
		Duration: o.Duration,
		Seed:     o.Seed,
	}
	if o.DisableSwitching {
		cfg.Switching = ifswitch.PolicyAlwaysWiFi
	}
	if o.BlockingSwapBuffer {
		cfg.InFlight = 1
	}
	for _, name := range o.Services {
		svc, err := device.ServiceDeviceByName(name)
		if err != nil {
			return pipeline.Config{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
		}
		cfg.Services = append(cfg.Services, svc)
	}
	return cfg, nil
}

func toResult(r pipeline.Result, d time.Duration) Result {
	if d <= 0 {
		d = 15 * time.Minute
	}
	return Result{
		MedianFPS:      r.MedianFPS,
		FPSStability:   r.Stability,
		AvgResponse:    r.AvgResponse,
		EnergyJoules:   r.Energy.TotalJoules(),
		AvgPowerW:      r.Energy.AveragePowerW(d),
		CPUUtil:        r.AvgCPUUtil,
		WiFiOnFraction: r.WiFiOnFraction,
	}
}

// SimulateLocal runs the workload entirely on the phone.
func SimulateLocal(o Options) (Result, error) {
	cfg, err := o.pipelineConfig()
	if err != nil {
		return Result{}, err
	}
	res, err := pipeline.RunLocal(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("gbooster: %w", err)
	}
	return toResult(res, o.Duration), nil
}

// SimulateOffload runs the workload with GPU tasks offloaded to the
// configured service devices.
func SimulateOffload(o Options) (Result, error) {
	cfg, err := o.pipelineConfig()
	if err != nil {
		return Result{}, err
	}
	if len(cfg.Services) == 0 {
		return Result{}, fmt.Errorf("%w: offload needs at least one service device", ErrBadOptions)
	}
	res, err := pipeline.RunOffload(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("gbooster: %w", err)
	}
	return toResult(res, o.Duration), nil
}
