package gbooster

import (
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
)

// TestPlayerCrashRecoverHotJoinSoak is the elastic-devices soak: a
// device crashes (blackholed both ways) mid-session and is evicted,
// the link is later restored and the device must be readmitted through
// a session-bootstrap handoff — not a cold probe — while a brand-new
// server hot-joins mid-session and another is administratively
// drained. Through all of it every frame must come out of StepFrame in
// order, with zero gap-skip tombstones.
func TestPlayerCrashRecoverHotJoinSoak(t *testing.T) {
	const w, h = 96, 64
	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()

	var wg sync.WaitGroup
	var servers []*StreamServer
	t.Cleanup(func() {
		for _, s := range servers {
			_ = s.Close()
		}
		wg.Wait()
	})
	start := func(name string, seed uint64) [2]*netsim.LinkConn {
		t.Helper()
		srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
		if err != nil {
			t.Fatal(err)
		}
		lc, ls := netsim.NewLinkPair(netsim.LinkConfig{Delay: 200 * time.Microsecond}, seed)
		servers = append(servers, srv)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.ServeConn(ls, lc.Addr())
		}()
		if err := player.ConnectConn(name, lc, ls.Addr(), 1000); err != nil {
			t.Fatal(err)
		}
		return [2]*netsim.LinkConn{lc, ls}
	}

	crashPair := start("dev-A", 40)
	start("dev-B", 41)
	start("dev-C", 42)

	frames := 0
	step := func() {
		t.Helper()
		img, err := player.StepFrame(15 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
			t.Fatalf("frame %d bounds %v", frames, img.Bounds())
		}
		frames++
	}

	// Warm up, then crash dev-A mid-session.
	for i := 0; i < 10; i++ {
		step()
	}
	crashPair[0].Blackhole()
	crashPair[1].Blackhole()
	for i := 0; i < 15; i++ {
		step()
	}
	if fs := player.FailoverStats(); fs.Evictions == 0 {
		t.Fatalf("crashed device never evicted: %+v", fs)
	}

	// The device comes back. Readmission is gated on the bootstrap
	// handoff: the client must wait out the probe cool-down, drain the
	// dead window via retransmits, ship the checkpoint, and see a
	// matching fingerprint ack. Keep playing until that completes.
	crashPair[0].Restore()
	crashPair[1].Restore()
	deadline := time.Now().Add(30 * time.Second)
	for player.HandoffStats().Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("restored device never readmitted: handoff=%+v failover=%+v devices=%+v",
				player.HandoffStats(), player.FailoverStats(), player.DeviceStates())
		}
		step()
		time.Sleep(10 * time.Millisecond)
	}
	if fs := player.FailoverStats(); fs.Readmissions == 0 {
		t.Fatalf("handoff completed but device not readmitted: %+v", fs)
	}

	// Hot-join a brand-new server mid-session...
	start("dev-D", 43)
	deadline = time.Now().Add(15 * time.Second)
	for player.HandoffStats().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("hot-join never completed: handoff=%+v devices=%+v",
				player.HandoffStats(), player.DeviceStates())
		}
		step()
		time.Sleep(5 * time.Millisecond)
	}

	// ...and drain another, migrating its in-flight work.
	if err := player.Drain("dev-B"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		step()
	}

	st := player.Stats()
	if st.FramesSent != int64(frames) || st.FramesShown != int64(frames) {
		t.Fatalf("sent=%d shown=%d, want %d each", st.FramesSent, st.FramesShown, frames)
	}
	fs := player.FailoverStats()
	if fs.FramesSkipped != 0 {
		t.Fatalf("gap-skip tombstones after recovery: %+v", fs)
	}
	hs := player.HandoffStats()
	if hs.Completed < 2 || hs.BootstrapsSent < 2 || hs.BootstrapBytes <= 0 {
		t.Fatalf("handoff stats %+v", hs)
	}
	if hs.MeanLatency <= 0 {
		t.Fatalf("mean handoff latency not recorded: %+v", hs)
	}
}
