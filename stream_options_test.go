package gbooster

import "testing"

// TestWithQualityClamped: out-of-range qualities are normalized at the
// option layer — nonpositive keeps the zero "library default" (the
// CLIs pass 0 to mean exactly that), oversized clamps to 100 — so a
// misconfigured caller gets a working codec instead of an error deep
// in the session.
func TestWithQualityClamped(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {60, 60}, {100, 100}, {1000, 100},
	}
	for _, tc := range cases {
		o := buildOptions([]Option{WithQuality(tc.in)})
		if o.quality != tc.want {
			t.Errorf("WithQuality(%d) = %d, want %d", tc.in, o.quality, tc.want)
		}
	}
}

func TestWithAdaptiveQuality(t *testing.T) {
	o := buildOptions([]Option{WithQuality(85), WithAdaptiveQuality(30)})
	if !o.adaptiveQuality || o.qualityFloor != 30 {
		t.Fatalf("adaptive=%v floor=%d", o.adaptiveQuality, o.qualityFloor)
	}
	// A floor above 100 is clamped at the option layer; a nonpositive
	// floor defers to the server's default.
	if o := buildOptions([]Option{WithAdaptiveQuality(500)}); o.qualityFloor != 100 {
		t.Fatalf("floor 500 clamped to %d", o.qualityFloor)
	}
	if o := buildOptions([]Option{WithAdaptiveQuality(0)}); !o.adaptiveQuality || o.qualityFloor != 0 {
		t.Fatalf("floor 0: adaptive=%v floor=%d", o.adaptiveQuality, o.qualityFloor)
	}
	// Servers built with extreme settings must still construct.
	srv, err := NewStreamServer(StreamServerConfig{Width: 64, Height: 48},
		WithQuality(1000), WithAdaptiveQuality(-7))
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
}
