package gbooster

import (
	"errors"
	"fmt"
	"image"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/hook"
	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/predict"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// options collects the data-plane tunables shared by StreamServer and
// Player. Zero values mean "library default" throughout.
type options struct {
	quality         int
	parallelism     int
	diffThreshold   float64
	pipelineDepth   int
	adaptiveQuality bool
	qualityFloor    int
	predictive      bool
}

// Option tunes a StreamServer or Player beyond its config struct.
type Option func(*options)

// WithQuality sets the turbo codec quality: values above 100 clamp to
// 100, and q <= 0 keeps the library default (matching the rest of the
// options API, where zero means "default" — gbooster-server relies on
// it). With adaptive quality enabled this is the ladder's ceiling —
// the quality the server returns to on an uncongested link. The player
// needs no matching setting: each turbo packet carries its encode
// quality.
func WithQuality(q int) Option {
	return func(o *options) {
		if q <= 0 {
			q = 0 // library default
		}
		if q > 100 {
			q = 100
		}
		o.quality = q
	}
}

// WithAdaptiveQuality enables the server's congestion-aware quality
// ladder: encode quality steps down toward floor (clamped to 1..the
// configured quality; <= 0 selects the default floor) when the
// session's transport shows retransmits, receive-queue pushback, a
// half-full send window, or RTT inflation, and recovers gradually once
// the link runs clean. Server-side only; players ignore it.
func WithAdaptiveQuality(floor int) Option {
	return func(o *options) {
		o.adaptiveQuality = true
		if floor > 100 {
			floor = 100
		}
		o.qualityFloor = floor
	}
}

// WithParallelism sets the data-plane worker degree — rasterization
// bands and codec tiles on the server, codec tiles on the player.
// n <= 0 selects one worker per CPU, 1 forces the serial reference
// path. Output is byte-identical at every degree; only latency changes.
func WithParallelism(n int) Option {
	return func(o *options) {
		if n <= 0 {
			n = 0 // one worker per CPU
		}
		o.parallelism = n
	}
}

// WithDiffThreshold overrides the encoder's changed-tile sensitivity
// (mean absolute difference in 8-bit code values below which a tile is
// skipped in delta frames). t <= 0 ships every nonidentical tile.
// Server-side only; players ignore it.
func WithDiffThreshold(t float64) Option {
	return func(o *options) {
		if t <= 0 {
			t = -1 // exact mode
		}
		o.diffThreshold = t
	}
}

// WithPipelineDepth bounds the stage-overlap queues (render/encode on
// the server, receive/decode on the player): 0 keeps the default,
// negative disables overlap entirely.
func WithPipelineDepth(d int) Option {
	return func(o *options) { o.pipelineDepth = d }
}

// WithPredictiveControl enables the player's predictive control plane:
// an online ARMAX model fed each frame's exogenous signals (touch
// events, texture count) and the session's observed traffic forecasts
// demand 500 ms ahead, pre-wakes the modeled WiFi radio before bursts,
// biases the dispatcher's Eq. 4 cost with predicted load so device
// selection anticipates rather than reacts, and closes the loop with
// per-session energy and thermal accounting surfaced through
// Snapshot().Predict. Player-side only; servers ignore it.
func WithPredictiveControl() Option {
	return func(o *options) { o.predictive = true }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// StreamServerConfig identifies what a StreamServer renders.
type StreamServerConfig struct {
	// Width, Height is the streaming resolution (must match the
	// player's).
	Width, Height int
}

// StreamServer is a service-device daemon: it accepts one GBooster
// client over (reliable) UDP, replays the intercepted command stream on
// a software GPU, and streams turbo-encoded frames back.
type StreamServer struct {
	srv *core.Server

	// acceptTimeout bounds ServeUDP's total wait for the first client
	// datagram — total, not per-datagram: stray traffic rejected by the
	// protocol check must not keep pushing the deadline out forever.
	acceptTimeout time.Duration

	mu     sync.Mutex
	pc     net.PacketConn // ServeUDP's listener while awaiting a client
	conn   *rudp.Conn
	closed bool
}

// defaultAcceptTimeout is how long ServeUDP waits in total for the
// first protocol datagram before giving up.
const defaultAcceptTimeout = 5 * time.Minute

// NewStreamServer builds a server rendering at cfg's resolution,
// tuned by opts (quality, parallelism, diff threshold, pipeline
// depth).
func NewStreamServer(cfg StreamServerConfig, opts ...Option) (*StreamServer, error) {
	o := buildOptions(opts)
	srv, err := core.NewServer(core.ServerConfig{
		Width:           cfg.Width,
		Height:          cfg.Height,
		Quality:         o.quality,
		Parallelism:     o.parallelism,
		DiffThreshold:   o.diffThreshold,
		PipelineDepth:   o.pipelineDepth,
		AdaptiveQuality: o.adaptiveQuality,
		QualityFloor:    o.qualityFloor,
	})
	if err != nil {
		return nil, fmt.Errorf("gbooster: %w", err)
	}
	return &StreamServer{srv: srv}, nil
}

// ServeConn serves one client over pc, treating peer as the client's
// address. It blocks until the connection closes.
func (s *StreamServer) ServeConn(pc net.PacketConn, peer net.Addr) error {
	return s.serveConn(pc, peer, nil)
}

// ErrServerClosed is returned when a session is offered to a
// StreamServer that has already been shut down.
var ErrServerClosed = errors.New("gbooster: stream server closed")

// serveConn runs the session; firstDatagram, if non-nil, is a datagram
// the accept path already read off the socket and is injected into the
// reliable layer so it isn't lost.
func (s *StreamServer) serveConn(pc net.PacketConn, peer net.Addr, firstDatagram []byte) error {
	s.mu.Lock()
	if s.closed {
		// A session racing Close must not start and overwrite s.conn —
		// it would resurrect a server the owner already tore down.
		s.mu.Unlock()
		return ErrServerClosed
	}
	conn := rudp.New(pc, peer, rudp.DefaultOptions())
	s.conn = conn
	s.mu.Unlock()
	if firstDatagram != nil {
		conn.Inject(firstDatagram)
	}
	err := s.srv.Serve(conn)
	_ = conn.Close()
	return err
}

// ServeUDP listens on addr ("host:port"), waits for the first client
// datagram to learn the peer, then serves it. It blocks for the life of
// the session. Close unblocks it even if no client ever connects.
func (s *StreamServer) ServeUDP(addr string) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("gbooster: listen: %w", err)
	}
	// Register the listener before blocking on it so Close can reach
	// it: a server shut down while still waiting for its first client
	// must release the socket, not leak it until the deadline.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = pc.Close()
		return ErrServerClosed
	}
	s.pc = pc
	s.mu.Unlock()
	// Peek for the first *protocol* datagram to learn the client
	// address, then hand both the socket and the datagram to the
	// reliable layer — dropping it would open every session with a
	// guaranteed retransmit and a duplicate delivery. A datagram that
	// doesn't carry the GBooster magic must NOT adopt the sender as the
	// session peer: a UDP port scan or any stray packet arriving before
	// the real client would otherwise bind the session to the wrong
	// address and strand the client. Rejected datagrams are dropped and
	// the wait continues against one absolute deadline, so junk traffic
	// cannot extend the accept window indefinitely.
	timeout := s.acceptTimeout
	if timeout <= 0 {
		timeout = defaultAcceptTimeout
	}
	acceptBy := time.Now().Add(timeout)
	buf := make([]byte, 65536)
	for {
		if err := pc.SetReadDeadline(acceptBy); err != nil {
			return fmt.Errorf("gbooster: deadline: %w", err)
		}
		n, peer, err := pc.ReadFrom(buf)
		if err == nil && !rudp.IsProtocolDatagram(buf[:n]) {
			continue // not a client; keep waiting out the same deadline
		}
		s.mu.Lock()
		s.pc = nil // serveConn's reliable layer owns the socket from here
		closed := s.closed
		s.mu.Unlock()
		if err != nil {
			_ = pc.Close()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("gbooster: first packet: %w", err)
		}
		_ = pc.SetReadDeadline(time.Time{})
		return s.serveConn(pc, peer, buf[:n])
	}
}

// TransportStats returns the server-side transport health snapshot of
// the current session. ok is false before a client has connected.
func (s *StreamServer) TransportStats() (stats rudp.Stats, ok bool) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return rudp.Stats{}, false
	}
	return conn.Stats(), true
}

// Close tears the server down: the active session's connection if one
// exists, and any ServeUDP listener still waiting for its first client
// (which would otherwise stay open until its accept deadline).
func (s *StreamServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.pc != nil {
		err = s.pc.Close()
		s.pc = nil
	}
	if s.conn != nil {
		if cerr := s.conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Player drives a catalog workload through the full GBooster client
// path — linker hooks, wrapper library, wire serialization, caching,
// compression, reliable UDP — against one or more StreamServers, and
// hands back the displayed frames.
type Player struct {
	w, h   int
	game   *workload.Game
	client *core.Client
	linker *hook.Linker
	calls  map[string]hook.GLFunc

	// predict is the session's predictive controller when
	// WithPredictiveControl is enabled (nil otherwise). predictStop ends
	// its wall-clock tick goroutine; predictDone confirms exit so Close
	// never races a final Tick against Finish.
	predict     *predict.Controller
	predictStop chan struct{}
	predictDone chan struct{}
	stopPredict sync.Once

	// start anchors Snapshot's Elapsed field.
	start time.Time

	// Caller-visible frame span (StepFrame issue to display — the
	// paper's Eq. 5 response time), accumulated by StepFrame itself so
	// every harness gets latency through Snapshot without timing frames
	// by hand. Atomics: StepFrame and Snapshot may race.
	latTotalNS int64
	latMaxNS   int64
	latCount   int64
}

// PlayerConfig identifies what a Player runs and displays.
type PlayerConfig struct {
	// Workload is the catalog workload ID (e.g. "G5").
	Workload string
	// Width, Height is the streaming resolution (must match the
	// servers').
	Width, Height int
	// Seed parameterizes the workload's deterministic frame stream.
	Seed uint64
}

// NewPlayer builds a player for a catalog workload, tuned by opts
// (quality, parallelism, pipeline depth). The GL call path is resolved
// through a simulated dynamic linker with the GBooster wrapper
// preloaded, exactly as §IV-A installs it on Android.
func NewPlayer(cfg PlayerConfig, opts ...Option) (*Player, error) {
	prof, err := workload.ByID(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, cfg.Workload)
	}
	o := buildOptions(opts)
	game := workload.NewGame(prof, cfg.Seed)
	client, err := core.NewClient(core.ClientConfig{
		Width:         cfg.Width,
		Height:        cfg.Height,
		Quality:       o.quality,
		Arrays:        game.Arrays(),
		Parallelism:   o.parallelism,
		PipelineDepth: o.pipelineDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("gbooster: %w", err)
	}
	ln := hook.NewLinker()
	if err := client.Install(ln, "libgbooster.so"); err != nil {
		return nil, fmt.Errorf("gbooster: install hooks: %w", err)
	}
	p := &Player{
		w: cfg.Width, h: cfg.Height,
		game:   game,
		client: client,
		linker: ln,
		calls:  make(map[string]hook.GLFunc),
		start:  time.Now(),
	}
	if o.predictive {
		ctl, err := predict.New(predict.Config{Traffic: client.TrafficBytes})
		if err != nil {
			return nil, fmt.Errorf("gbooster: predictive control: %w", err)
		}
		p.predict = ctl
		client.SetLoadForecast(ctl.LoadForecast)
		p.predictStop = make(chan struct{})
		p.predictDone = make(chan struct{})
		// The controller advances on real wall-clock windows: each tick
		// differences the client's wire traffic into a demand sample,
		// drains the frame accumulators into the load model, and runs the
		// radio pre-wake decision.
		go func() {
			defer close(p.predictDone)
			t := time.NewTicker(ctl.Window())
			defer t.Stop()
			for {
				select {
				case <-p.predictStop:
					return
				case <-t.C:
					ctl.Tick()
				}
			}
		}()
	}
	return p, nil
}

// Connect attaches a service device at a UDP address.
func (p *Player) Connect(addr string) error {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("gbooster: resolve %q: %w", addr, err)
	}
	pc, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return fmt.Errorf("gbooster: local socket: %w", err)
	}
	conn := rudp.New(pc, raddr, rudp.DefaultOptions())
	return p.client.AddService(addr, conn, 1000, 2*time.Millisecond)
}

// ConnectConn attaches a service device over an existing packet conn
// (for in-memory links in tests and examples).
func (p *Player) ConnectConn(name string, pc net.PacketConn, peer net.Addr, capability float64) error {
	conn := rudp.New(pc, peer, rudp.DefaultOptions())
	return p.client.AddService(name, conn, capability, 2*time.Millisecond)
}

// StepFrame generates the next game frame, pushes it through the hooked
// GL path, and returns the next displayed frame as an image. The
// issue-to-display span of each successful frame is accumulated into
// the snapshot's frame-latency counters.
func (p *Player) StepFrame(timeout time.Duration) (*image.RGBA, error) {
	begin := time.Now()
	frame := p.game.NextFrame()
	if p.predict != nil {
		p.predict.ObserveFrame(frame.Features)
	}
	for _, cmd := range frame.Commands {
		name := cmd.Op.String()
		fn, ok := p.calls[name]
		if !ok {
			resolved, err := hook.ResolveGL(p.linker, hook.LinkDirect, name)
			if err != nil {
				return nil, fmt.Errorf("gbooster: resolve %s: %w", name, err)
			}
			fn = resolved
			p.calls[name] = fn
		}
		fn(cmd)
	}
	if err := p.client.Err(); err != nil {
		return nil, err
	}
	displayed, err := p.client.NextFrame(timeout)
	if err != nil {
		return nil, fmt.Errorf("gbooster: next frame: %w", err)
	}
	if err := validateFrameSize(len(displayed.Pixels), p.w, p.h); err != nil {
		return nil, fmt.Errorf("gbooster: frame %d: %w", displayed.Seq, err)
	}
	img := image.NewRGBA(image.Rect(0, 0, p.w, p.h))
	copy(img.Pix, displayed.Pixels)
	p.recordFrameLatency(time.Since(begin))
	return img, nil
}

// recordFrameLatency folds one frame span into the Eq. 5 counters.
func (p *Player) recordFrameLatency(d time.Duration) {
	if d < 0 {
		return
	}
	atomic.AddInt64(&p.latTotalNS, int64(d))
	atomic.AddInt64(&p.latCount, 1)
	for {
		max := atomic.LoadInt64(&p.latMaxNS)
		if int64(d) <= max || atomic.CompareAndSwapInt64(&p.latMaxNS, max, int64(d)) {
			return
		}
	}
}

// ErrBadFrame is returned when a displayed frame's pixel buffer does
// not match the player's resolution.
var ErrBadFrame = errors.New("gbooster: malformed frame")

// validateFrameSize checks a pixel buffer against the w*h*4 RGBA size
// the display expects: a short or oversized frame would otherwise
// silently render garbage.
func validateFrameSize(n, w, h int) error {
	if want := w * h * 4; n != want {
		return fmt.Errorf("%w: %d pixel bytes, want %d (%dx%d RGBA)", ErrBadFrame, n, want, w, h)
	}
	return nil
}

// The session stat types live in internal/metrics — the collectors'
// home package — and are aliased here so the public names are the same
// types metrics.Collector consumes. Documentation is on the metrics
// definitions.
type (
	// PlayerStats summarizes a session's streaming counters.
	PlayerStats = metrics.PlayerStats
	// TransportHealth is one service connection's loss-recovery
	// snapshot.
	TransportHealth = metrics.TransportHealth
	// FailoverStats summarizes the client's §VI-C fault tolerance over
	// the session.
	FailoverStats = metrics.FailoverStats
	// DeviceState is one attached service device's dispatch view.
	DeviceState = metrics.DeviceState
	// HandoffStats summarizes the session's elastic-device activity.
	HandoffStats = metrics.HandoffStats
	// PlayerSnapshot is one consistent observation of a whole session:
	// every stat block the five per-feature getters expose, read
	// together. Feed it to metrics collectors via a metrics.Registry.
	PlayerSnapshot = metrics.PlayerSnapshot
	// FleetSnapshot is one consistent observation of a Fleet.
	FleetSnapshot = metrics.FleetSnapshot
	// PredictStats is the predictive control plane's session block
	// (forecast quality, radio activity, energy and thermal accounting).
	PredictStats = metrics.PredictStats
)

// Snapshot returns one consistent observation of the session: the
// streaming, failover, and handoff counter blocks from a single
// underlying stats read, the per-device and per-transport views taken
// back-to-back with it, the session age, and the frame-latency
// accumulators StepFrame maintains. Prefer it over the per-feature
// getters when reading more than one block — it is the input every
// metrics collector consumes.
func (p *Player) Snapshot() PlayerSnapshot {
	st := p.client.Stats()
	s := PlayerSnapshot{
		Elapsed: time.Since(p.start),
		PlayerStats: PlayerStats{
			FramesSent:       st.FramesSent,
			FramesShown:      st.FramesDisplayed,
			RawBytes:         st.RawBytes,
			WireBytes:        st.WireBytes,
			PreCompressBytes: st.PreCompressBytes,
			CacheHits:        st.CacheHits,
			CacheMisses:      st.CacheMisses,
			DownlinkBytes:    st.DownlinkBytes,
			QualityNow:       st.QualityNow,
			QualityMin:       st.QualityMin,
			QualityChanges:   st.QualityChanges,
		},
		FailoverStats: FailoverStats{
			ReDispatched:   st.ReDispatched,
			FramesSkipped:  st.FramesSkipped,
			LateFrames:     st.LateFrames,
			Evictions:      st.Evictions,
			Readmissions:   st.Readmissions,
			RecvBadMsgs:    st.RecvBadMsgs,
			RecvUnexpected: st.RecvUnexpected,
		},
		HandoffStats: HandoffStats{
			BootstrapsSent: st.BootstrapsSent,
			BootstrapBytes: st.BootstrapBytes,
			Completed:      st.HandoffsCompleted,
			Failed:         st.HandoffsFailed,
		},
		FrameLatencyTotal: time.Duration(atomic.LoadInt64(&p.latTotalNS)),
		FrameLatencyMax:   time.Duration(atomic.LoadInt64(&p.latMaxNS)),
		FrameLatencyCount: atomic.LoadInt64(&p.latCount),
	}
	if s.Completed > 0 {
		s.HandoffStats.MeanLatency = st.HandoffLatencyTotal / time.Duration(s.Completed)
	}
	for _, ds := range p.client.DeviceStates() {
		s.Devices = append(s.Devices, DeviceState{Service: ds.Service, Health: ds.Health.String(), Queued: ds.Queued})
	}
	for _, th := range p.client.TransportStats() {
		s.Transports = append(s.Transports, TransportHealth{
			Service:         th.Service,
			SRTT:            th.SRTT,
			RTTVar:          th.RTTVar,
			RTO:             th.RTO,
			ResendRate:      th.ResendRate(),
			WindowOccupancy: th.WindowOccupancy,
			WindowLimit:     th.WindowLimit,
			DataSent:        th.DataSent,
			DataResent:      th.DataResent,
			FastResent:      th.FastResent,
			TimeoutResent:   th.TimeoutResent,
		})
	}
	if p.predict != nil {
		snap := p.predict.Snapshot()
		s.Predict = &snap
	}
	return s
}

// Stats returns transport-level counters for the session.
//
// Deprecated: read Snapshot().PlayerStats — one Snapshot call yields
// every stat block consistently. Kept as a thin accessor.
func (p *Player) Stats() PlayerStats {
	return p.Snapshot().PlayerStats
}

// FailoverStats returns the session's failover counters.
//
// Deprecated: read Snapshot().FailoverStats. Kept as a thin accessor.
func (p *Player) FailoverStats() FailoverStats {
	return p.Snapshot().FailoverStats
}

// DeviceStates reports each attached device's failover health, in
// attach order.
//
// Deprecated: read Snapshot().Devices. Kept as a thin accessor.
func (p *Player) DeviceStates() []DeviceState {
	return p.Snapshot().Devices
}

// TransportStats returns per-service transport health, in the order
// services were attached.
//
// Deprecated: read Snapshot().Transports. Kept as a thin accessor.
func (p *Player) TransportStats() []TransportHealth {
	return p.Snapshot().Transports
}

// Drain administratively removes a connected service device from the
// rotation: its in-flight frames migrate to the remaining replicas and
// it receives no further traffic. The device stays attached; if it
// remains reachable it is later readmitted automatically via a session
// bootstrap handoff.
func (p *Player) Drain(service string) error {
	return p.client.DrainService(service)
}

// HandoffStats returns the session's live-handoff counters.
//
// Deprecated: read Snapshot().HandoffStats. Kept as a thin accessor.
func (p *Player) HandoffStats() HandoffStats {
	return p.Snapshot().HandoffStats
}

// Close shuts the player down. With predictive control enabled it
// stops the control tick, settles the radio energy accounts, and
// leaves the final prediction/energy block readable via Snapshot.
func (p *Player) Close() error {
	if p.predict != nil {
		p.stopPredict.Do(func() {
			close(p.predictStop)
			<-p.predictDone
			p.predict.Finish()
		})
	}
	return p.client.Close()
}
