package gbooster

import (
	"errors"
	"fmt"
	"image"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/hook"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// StreamServer is a service-device daemon: it accepts one GBooster
// client over (reliable) UDP, replays the intercepted command stream on
// a software GPU, and streams turbo-encoded frames back.
type StreamServer struct {
	srv  *core.Server
	conn *rudp.Conn

	mu     sync.Mutex
	closed bool
}

// NewStreamServer builds a server rendering at w×h.
func NewStreamServer(w, h int) (*StreamServer, error) {
	srv, err := core.NewServer(core.ServerConfig{Width: w, Height: h})
	if err != nil {
		return nil, fmt.Errorf("gbooster: %w", err)
	}
	return &StreamServer{srv: srv}, nil
}

// ServeConn serves one client over pc, treating peer as the client's
// address. It blocks until the connection closes.
func (s *StreamServer) ServeConn(pc net.PacketConn, peer net.Addr) error {
	return s.serveConn(pc, peer, nil)
}

// ErrServerClosed is returned when a session is offered to a
// StreamServer that has already been shut down.
var ErrServerClosed = errors.New("gbooster: stream server closed")

// serveConn runs the session; firstDatagram, if non-nil, is a datagram
// the accept path already read off the socket and is injected into the
// reliable layer so it isn't lost.
func (s *StreamServer) serveConn(pc net.PacketConn, peer net.Addr, firstDatagram []byte) error {
	s.mu.Lock()
	if s.closed {
		// A session racing Close must not start and overwrite s.conn —
		// it would resurrect a server the owner already tore down.
		s.mu.Unlock()
		return ErrServerClosed
	}
	conn := rudp.New(pc, peer, rudp.DefaultOptions())
	s.conn = conn
	s.mu.Unlock()
	if firstDatagram != nil {
		conn.Inject(firstDatagram)
	}
	err := s.srv.Serve(conn)
	_ = conn.Close()
	return err
}

// ServeUDP listens on addr ("host:port"), waits for the first client
// datagram to learn the peer, then serves it. It blocks for the life of
// the session.
func (s *StreamServer) ServeUDP(addr string) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("gbooster: listen: %w", err)
	}
	// Peek the first datagram to learn the client address, then hand
	// both the socket and the datagram to the reliable layer — dropping
	// it would open every session with a guaranteed retransmit and a
	// duplicate delivery.
	buf := make([]byte, 65536)
	if err := pc.SetReadDeadline(time.Now().Add(5 * time.Minute)); err != nil {
		return fmt.Errorf("gbooster: deadline: %w", err)
	}
	n, peer, err := pc.ReadFrom(buf)
	if err != nil {
		_ = pc.Close()
		return fmt.Errorf("gbooster: first packet: %w", err)
	}
	_ = pc.SetReadDeadline(time.Time{})
	return s.serveConn(pc, peer, buf[:n])
}

// TransportStats returns the server-side transport health snapshot of
// the current session. ok is false before a client has connected.
func (s *StreamServer) TransportStats() (stats rudp.Stats, ok bool) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return rudp.Stats{}, false
	}
	return conn.Stats(), true
}

// Close tears the server's connection down.
func (s *StreamServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

// Player drives a catalog workload through the full GBooster client
// path — linker hooks, wrapper library, wire serialization, caching,
// compression, reliable UDP — against one or more StreamServers, and
// hands back the displayed frames.
type Player struct {
	w, h   int
	game   *workload.Game
	client *core.Client
	linker *hook.Linker
	calls  map[string]hook.GLFunc
}

// NewPlayer builds a player for a catalog workload at w×h. The GL call
// path is resolved through a simulated dynamic linker with the GBooster
// wrapper preloaded, exactly as §IV-A installs it on Android.
func NewPlayer(workloadID string, w, h int, seed uint64) (*Player, error) {
	prof, err := workload.ByID(workloadID)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, workloadID)
	}
	game := workload.NewGame(prof, seed)
	client, err := core.NewClient(core.ClientConfig{Width: w, Height: h, Arrays: game.Arrays()})
	if err != nil {
		return nil, fmt.Errorf("gbooster: %w", err)
	}
	ln := hook.NewLinker()
	if err := client.Install(ln, "libgbooster.so"); err != nil {
		return nil, fmt.Errorf("gbooster: install hooks: %w", err)
	}
	return &Player{
		w: w, h: h,
		game:   game,
		client: client,
		linker: ln,
		calls:  make(map[string]hook.GLFunc),
	}, nil
}

// Connect attaches a service device at a UDP address.
func (p *Player) Connect(addr string) error {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("gbooster: resolve %q: %w", addr, err)
	}
	pc, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return fmt.Errorf("gbooster: local socket: %w", err)
	}
	conn := rudp.New(pc, raddr, rudp.DefaultOptions())
	return p.client.AddService(addr, conn, 1000, 2*time.Millisecond)
}

// ConnectConn attaches a service device over an existing packet conn
// (for in-memory links in tests and examples).
func (p *Player) ConnectConn(name string, pc net.PacketConn, peer net.Addr, capability float64) error {
	conn := rudp.New(pc, peer, rudp.DefaultOptions())
	return p.client.AddService(name, conn, capability, 2*time.Millisecond)
}

// StepFrame generates the next game frame, pushes it through the hooked
// GL path, and returns the next displayed frame as an image.
func (p *Player) StepFrame(timeout time.Duration) (*image.RGBA, error) {
	frame := p.game.NextFrame()
	for _, cmd := range frame.Commands {
		name := cmd.Op.String()
		fn, ok := p.calls[name]
		if !ok {
			resolved, err := hook.ResolveGL(p.linker, hook.LinkDirect, name)
			if err != nil {
				return nil, fmt.Errorf("gbooster: resolve %s: %w", name, err)
			}
			fn = resolved
			p.calls[name] = fn
		}
		fn(cmd)
	}
	if err := p.client.Err(); err != nil {
		return nil, err
	}
	displayed, err := p.client.NextFrame(timeout)
	if err != nil {
		return nil, fmt.Errorf("gbooster: next frame: %w", err)
	}
	if err := validateFrameSize(len(displayed.Pixels), p.w, p.h); err != nil {
		return nil, fmt.Errorf("gbooster: frame %d: %w", displayed.Seq, err)
	}
	img := image.NewRGBA(image.Rect(0, 0, p.w, p.h))
	copy(img.Pix, displayed.Pixels)
	return img, nil
}

// ErrBadFrame is returned when a displayed frame's pixel buffer does
// not match the player's resolution.
var ErrBadFrame = errors.New("gbooster: malformed frame")

// validateFrameSize checks a pixel buffer against the w*h*4 RGBA size
// the display expects: a short or oversized frame would otherwise
// silently render garbage.
func validateFrameSize(n, w, h int) error {
	if want := w * h * 4; n != want {
		return fmt.Errorf("%w: %d pixel bytes, want %d (%dx%d RGBA)", ErrBadFrame, n, want, w, h)
	}
	return nil
}

// Stats returns transport-level counters for the session.
func (p *Player) Stats() (framesSent, framesShown, rawBytes, wireBytes int64) {
	st := p.client.Stats()
	return st.FramesSent, st.FramesDisplayed, st.RawBytes, st.WireBytes
}

// TransportHealth is one service connection's loss-recovery snapshot:
// the adaptive estimator's SRTT and current RTO, the fraction of data
// transmissions that were retransmissions, and send-window occupancy.
type TransportHealth struct {
	Service         string
	SRTT            time.Duration
	RTTVar          time.Duration
	RTO             time.Duration
	ResendRate      float64
	WindowOccupancy int
	WindowLimit     int
	DataSent        int64
	DataResent      int64
	FastResent      int64
	TimeoutResent   int64
}

// FailoverStats summarizes the client's §VI-C fault tolerance over the
// session: orphaned frames re-dispatched to replicas, devices evicted
// and readmitted by the health state machine, frames abandoned on
// every device, duplicate results from slow devices, and messages the
// receive path dropped.
type FailoverStats struct {
	ReDispatched   int64
	FramesSkipped  int64
	LateFrames     int64
	Evictions      int64
	Readmissions   int64
	RecvBadMsgs    int64
	RecvUnexpected int64
}

// FailoverStats returns the session's failover counters.
func (p *Player) FailoverStats() FailoverStats {
	st := p.client.Stats()
	return FailoverStats{
		ReDispatched:   st.ReDispatched,
		FramesSkipped:  st.FramesSkipped,
		LateFrames:     st.LateFrames,
		Evictions:      st.Evictions,
		Readmissions:   st.Readmissions,
		RecvBadMsgs:    st.RecvBadMsgs,
		RecvUnexpected: st.RecvUnexpected,
	}
}

// DeviceState is one attached service device's dispatch view.
type DeviceState struct {
	Service string
	// Health is "healthy", "suspect", or "evicted".
	Health string
	// Queued is the device's outstanding Eq. 4 workload.
	Queued float64
}

// DeviceStates reports each attached device's failover health, in
// attach order.
func (p *Player) DeviceStates() []DeviceState {
	var out []DeviceState
	for _, ds := range p.client.DeviceStates() {
		out = append(out, DeviceState{Service: ds.Service, Health: ds.Health.String(), Queued: ds.Queued})
	}
	return out
}

// TransportStats returns per-service transport health, in the order
// services were attached.
func (p *Player) TransportStats() []TransportHealth {
	var out []TransportHealth
	for _, th := range p.client.TransportStats() {
		out = append(out, TransportHealth{
			Service:         th.Service,
			SRTT:            th.SRTT,
			RTTVar:          th.RTTVar,
			RTO:             th.RTO,
			ResendRate:      th.ResendRate(),
			WindowOccupancy: th.WindowOccupancy,
			WindowLimit:     th.WindowLimit,
			DataSent:        th.DataSent,
			DataResent:      th.DataResent,
			FastResent:      th.FastResent,
			TimeoutResent:   th.TimeoutResent,
		})
	}
	return out
}

// Close shuts the player down.
func (p *Player) Close() error { return p.client.Close() }
