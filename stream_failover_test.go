package gbooster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
)

// TestPlayerSurvivesDeviceCrash exercises the public API's §VI-C fault
// tolerance: three StreamServers over emulated links, one of which
// crashes (blackholed in both directions) mid-session. Every frame
// must still come out of StepFrame, in order, with the failover
// counters recording the recovery.
func TestPlayerSurvivesDeviceCrash(t *testing.T) {
	const w, h = 96, 64
	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()

	var wg sync.WaitGroup
	var servers []*StreamServer
	var pairs [][2]*netsim.LinkConn
	t.Cleanup(func() {
		for _, s := range servers {
			_ = s.Close()
		}
		wg.Wait()
	})
	for i := 0; i < 3; i++ {
		srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
		if err != nil {
			t.Fatal(err)
		}
		lc, ls := netsim.NewLinkPair(netsim.LinkConfig{Delay: 200 * time.Microsecond}, uint64(30+i))
		pairs = append(pairs, [2]*netsim.LinkConn{lc, ls})
		servers = append(servers, srv)
		wg.Add(1)
		go func(s *StreamServer) {
			defer wg.Done()
			_ = s.ServeConn(ls, lc.Addr())
		}(srv)
		if err := player.ConnectConn("dev-"+string(rune('A'+i)), lc, ls.Addr(), 1000); err != nil {
			t.Fatal(err)
		}
	}

	const frames = 40
	const crashAt = 10
	for f := 0; f < frames; f++ {
		if f == crashAt {
			pairs[0][0].Blackhole()
			pairs[0][1].Blackhole()
		}
		img, err := player.StepFrame(15 * time.Second)
		if err != nil {
			t.Fatalf("frame %d (crash at %d): %v", f, crashAt, err)
		}
		if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
			t.Fatalf("frame %d bounds %v", f, img.Bounds())
		}
	}
	st := player.Stats()
	if st.FramesSent != frames || st.FramesShown != frames {
		t.Fatalf("stats sent=%d shown=%d, want %d", st.FramesSent, st.FramesShown, frames)
	}
	fs := player.FailoverStats()
	if fs.ReDispatched == 0 {
		t.Fatalf("crash did not trigger a re-dispatch: %+v", fs)
	}
	if fs.Evictions == 0 {
		t.Fatalf("crashed device never evicted: %+v", fs)
	}
	if fs.FramesSkipped != 0 {
		t.Fatalf("frames skipped despite live replicas: %+v", fs)
	}
	// The dead device shows up in the health report.
	unhealthy := 0
	for _, ds := range player.DeviceStates() {
		if ds.Health != "healthy" {
			unhealthy++
		}
	}
	if unhealthy == 0 {
		t.Fatalf("no device reported unhealthy after a crash: %+v", player.DeviceStates())
	}
}

// TestServeConnAfterCloseRefused is the regression test for the
// shutdown race: a session offered to an already-closed StreamServer
// must be refused instead of silently resurrecting the server.
func TestServeConnAfterCloseRefused(t *testing.T) {
	srv, err := NewStreamServer(StreamServerConfig{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	a, b := NewLinkPairForTest()
	defer a.Close()
	defer b.Close()
	if err := srv.ServeConn(a, b.Addr()); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("ServeConn after Close = %v, want ErrServerClosed", err)
	}
	// The refused session must not have installed a connection.
	if _, ok := srv.TransportStats(); ok {
		t.Fatal("refused session overwrote the server's connection")
	}
}

// NewLinkPairForTest gives this package's tests an in-memory packet
// pair without importing netsim at each call site.
func NewLinkPairForTest() (*netsim.LinkConn, *netsim.LinkConn) {
	return netsim.NewLinkPair(netsim.LinkConfig{}, 99)
}

// TestValidateFrameSize is the regression test for the display path
// blindly copying a mis-sized pixel buffer into the output image.
func TestValidateFrameSize(t *testing.T) {
	if err := validateFrameSize(96*64*4, 96, 64); err != nil {
		t.Fatalf("exact RGBA size rejected: %v", err)
	}
	for _, n := range []int{0, 1, 96 * 64, 96*64*4 - 1, 96*64*4 + 4} {
		err := validateFrameSize(n, 96, 64)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("validateFrameSize(%d) = %v, want ErrBadFrame", n, err)
		}
	}
}
