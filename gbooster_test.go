package gbooster

import (
	"errors"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/rudp"
)

func TestWorkloadCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 9 {
		t.Fatalf("Workloads() = %d entries, want 6 games + 3 apps", len(ws))
	}
	ids := map[string]bool{}
	for _, w := range ws {
		ids[w.ID] = true
		if w.Name == "" || w.Genre == "" {
			t.Errorf("workload %q missing metadata", w.ID)
		}
	}
	for _, want := range []string{"G1", "G6", "A3"} {
		if !ids[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
	if len(Phones()) != 3 || len(ServiceDevices()) != 4 {
		t.Fatal("device catalogs wrong size")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateLocal(Options{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("empty options error = %v", err)
	}
	if _, err := SimulateLocal(Options{Workload: "G9"}); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("bad workload error = %v", err)
	}
	if _, err := SimulateLocal(Options{Workload: "G1", Phone: "iphone"}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("bad phone error = %v", err)
	}
	if _, err := SimulateOffload(Options{Workload: "G1"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("offload without services error = %v", err)
	}
	if _, err := SimulateOffload(Options{Workload: "G1", Services: []string{"ps5"}}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("bad service error = %v", err)
	}
}

func TestSimulateHeadlineResult(t *testing.T) {
	// The paper's headline: offloading boosts action-game frame rates
	// dramatically and cuts energy.
	opts := Options{Workload: "G1", Phone: "nexus5", Duration: 5 * time.Minute, Seed: 1}
	local, err := SimulateLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Services = []string{"shield"}
	off, err := SimulateOffload(opts)
	if err != nil {
		t.Fatal(err)
	}
	if off.MedianFPS < local.MedianFPS*1.5 {
		t.Fatalf("boost %.1f -> %.1f too small", local.MedianFPS, off.MedianFPS)
	}
	if off.EnergyJoules >= local.EnergyJoules {
		t.Fatalf("no energy saving: %.0fJ -> %.0fJ", local.EnergyJoules, off.EnergyJoules)
	}
	if off.AvgPowerW <= 0 || off.CPUUtil <= 0 {
		t.Fatalf("metrics not populated: %+v", off)
	}
}

func TestSimulateAblations(t *testing.T) {
	base := Options{Workload: "G1", Phone: "nexus5", Services: []string{"shield", "optiplex", "optiplex"},
		Duration: 3 * time.Minute, Seed: 2}
	normal, err := SimulateOffload(base)
	if err != nil {
		t.Fatal(err)
	}
	blocking := base
	blocking.BlockingSwapBuffer = true
	blocked, err := SimulateOffload(blocking)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.MedianFPS >= normal.MedianFPS {
		t.Fatalf("blocking swap %.1f >= pipelined %.1f", blocked.MedianFPS, normal.MedianFPS)
	}
	noSwitch := base
	noSwitch.Services = []string{"shield"}
	noSwitch.DisableSwitching = true
	on, err := SimulateOffload(noSwitch)
	if err != nil {
		t.Fatal(err)
	}
	withSwitch := noSwitch
	withSwitch.DisableSwitching = false
	off, err := SimulateOffload(withSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if on.EnergyJoules <= off.EnergyJoules {
		t.Fatalf("always-wifi energy %.0fJ <= switched %.0fJ", on.EnergyJoules, off.EnergyJoules)
	}
}

func TestPlayerOverInMemoryLink(t *testing.T) {
	const w, h = 64, 48
	player, err := NewPlayer(PlayerConfig{Workload: "G6", Width: w, Height: h, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	pcC, pcS := rudp.NewMemPair(0.02, 9)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(pcS, pcC.Addr()) }()
	if err := player.ConnectConn("mem", pcC, pcS.Addr(), 1000); err != nil {
		t.Fatal(err)
	}

	for f := 0; f < 5; f++ {
		img, err := player.StepFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
			t.Fatalf("frame bounds %v", img.Bounds())
		}
	}
	st := player.Stats()
	if st.FramesSent != 5 || st.FramesShown != 5 {
		t.Fatalf("frames sent=%d shown=%d", st.FramesSent, st.FramesShown)
	}
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("no traffic reduction: raw=%d wire=%d", st.RawBytes, st.WireBytes)
	}
	_ = player.Close()
	_ = srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after Close")
	}
}

func TestPlayerValidation(t *testing.T) {
	if _, err := NewPlayer(PlayerConfig{Workload: "nope", Width: 32, Height: 32, Seed: 1}); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("bad workload error = %v", err)
	}
	if _, err := NewStreamServer(StreamServerConfig{}); err == nil {
		t.Fatal("zero-size server accepted")
	}
}
