package gbooster

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/rudp"
)

// TestSnapshotEquivalence proves the unified Snapshot agrees with the
// five legacy per-feature getters on a quiesced session: same counter
// blocks, same device and transport views.
func TestSnapshotEquivalence(t *testing.T) {
	const w, h = 64, 48
	player, err := NewPlayer(PlayerConfig{Workload: "G6", Width: w, Height: h, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pcC, pcS := rudp.NewMemPair(0, 11)
	go func() { _ = srv.ServeConn(pcS, pcC.Addr()) }()
	if err := player.ConnectConn("mem", pcC, pcS.Addr(), 1000); err != nil {
		t.Fatal(err)
	}

	for f := 0; f < 8; f++ {
		if _, err := player.StepFrame(5 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}

	// The session is quiesced (no frame in flight), so a snapshot and
	// the legacy getters must read identical state.
	s := player.Snapshot()
	if got := player.Stats(); got != s.PlayerStats {
		t.Errorf("Stats() = %+v\nSnapshot().PlayerStats = %+v", got, s.PlayerStats)
	}
	if got := player.FailoverStats(); got != s.FailoverStats {
		t.Errorf("FailoverStats() = %+v\nSnapshot().FailoverStats = %+v", got, s.FailoverStats)
	}
	if got := player.HandoffStats(); got != s.HandoffStats {
		t.Errorf("HandoffStats() = %+v\nSnapshot().HandoffStats = %+v", got, s.HandoffStats)
	}
	devs := player.DeviceStates()
	if len(devs) != len(s.Devices) {
		t.Fatalf("DeviceStates() len %d != Snapshot().Devices len %d", len(devs), len(s.Devices))
	}
	for i := range devs {
		if devs[i] != s.Devices[i] {
			t.Errorf("device %d: %+v != %+v", i, devs[i], s.Devices[i])
		}
	}
	trs := player.TransportStats()
	if len(trs) != len(s.Transports) {
		t.Fatalf("TransportStats() len %d != Snapshot().Transports len %d", len(trs), len(s.Transports))
	}
	for i := range trs {
		// SRTT/RTO keep moving with acks even when quiesced — compare
		// the identity and counter fields, which are stable.
		if trs[i].Service != s.Transports[i].Service ||
			trs[i].WindowLimit != s.Transports[i].WindowLimit ||
			trs[i].DataSent < s.Transports[i].DataSent {
			t.Errorf("transport %d: %+v != %+v", i, trs[i], s.Transports[i])
		}
	}

	// The snapshot-only extras must be live: session age, and the frame
	// latency StepFrame accumulated.
	if s.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", s.Elapsed)
	}
	if s.FrameLatencyCount != 8 {
		t.Errorf("FrameLatencyCount = %d, want 8", s.FrameLatencyCount)
	}
	if s.FrameLatencyTotal <= 0 || s.FrameLatencyMax <= 0 {
		t.Errorf("frame latency total=%v max=%v, want > 0", s.FrameLatencyTotal, s.FrameLatencyMax)
	}
	if s.MeanFrameLatency() > s.FrameLatencyMax {
		t.Errorf("mean %v > max %v", s.MeanFrameLatency(), s.FrameLatencyMax)
	}
	if fps := s.DeliveredFPS(); fps <= 0 {
		t.Errorf("DeliveredFPS = %v, want > 0", fps)
	}
	if s.Fleet != nil {
		t.Errorf("standalone player snapshot carries a fleet rider: %+v", s.Fleet)
	}
}

// TestFleetSnapshotEquivalence proves Fleet.Snapshot mirrors
// Fleet.Stats.
func TestFleetSnapshotEquivalence(t *testing.T) {
	fl, err := NewFleet(FleetConfig{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	// Before serving both must read zero.
	if fl.Snapshot().FleetStats != fl.Stats() {
		t.Fatal("Snapshot/Stats disagree before Serve")
	}
	if (fl.Snapshot().FleetStats != FleetStats{}) {
		t.Fatalf("unserved fleet snapshot not zero: %+v", fl.Snapshot().FleetStats)
	}
}
