// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark reports the experiment's headline numbers
// as custom metrics (so `go test -bench` output doubles as the results
// table) while timing how long the reproduction takes. Run:
//
//	go test -bench=. -benchmem
package gbooster_test

import (
	"testing"

	"github.com/gbooster/gbooster/internal/experiments"
)

// BenchmarkTableI regenerates Table I (game requirements vs phone
// capabilities).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableI(); out == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1 regenerates the GPU thermal-throttling trace.
func BenchmarkFig1(b *testing.B) {
	var minMHz float64
	for i := 0; i < b.N; i++ {
		trace, _, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		minMHz = 1e9
		for _, p := range trace {
			if p.MHz < minMHz {
				minMHz = p.MHz
			}
		}
	}
	b.ReportMetric(minMHz, "minMHz")
}

// BenchmarkFig5Nexus5 regenerates the acceleration study on the
// old-generation phone (Fig. 5a-c).
func BenchmarkFig5Nexus5(b *testing.B) {
	var g1Local, g1Off float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig5("nexus5", experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ID == "G1" {
				g1Local, g1Off = r.LocalFPS, r.OffloadFPS
			}
		}
	}
	b.ReportMetric(g1Local, "G1-local-fps")
	b.ReportMetric(g1Off, "G1-offload-fps")
}

// BenchmarkFig5LGG5 regenerates the study on the new-generation phone
// (Fig. 5d-e).
func BenchmarkFig5LGG5(b *testing.B) {
	var g1Local, g1Off float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig5("lgg5", experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ID == "G1" {
				g1Local, g1Off = r.LocalFPS, r.OffloadFPS
			}
		}
	}
	b.ReportMetric(g1Local, "G1-local-fps")
	b.ReportMetric(g1Off, "G1-offload-fps")
}

// BenchmarkFig6 regenerates the normalized-energy study.
func BenchmarkFig6(b *testing.B) {
	var g2Norm, g2Always float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig6(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Phone == "nexus5" && r.ID == "G2" {
				g2Norm, g2Always = r.NormSwitching, r.NormAlwaysWiFi
			}
		}
	}
	b.ReportMetric(g2Norm*100, "G2-norm-%")
	b.ReportMetric(g2Always*100, "G2-alwayswifi-%")
}

// BenchmarkFig7 regenerates the multi-device scaling study.
func BenchmarkFig7(b *testing.B) {
	var one, three float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig7(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		one, three = rows[1].MedianFPS, rows[3].MedianFPS
	}
	b.ReportMetric(one, "fps-1dev")
	b.ReportMetric(three, "fps-3dev")
}

// BenchmarkTableIII regenerates the non-gaming application study.
func BenchmarkTableIII(b *testing.B) {
	var worstNorm float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TableIII(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		worstNorm = 0
		for _, r := range rows {
			if n := r.OffloadEnergyJ / r.LocalEnergyJ; n > worstNorm {
				worstNorm = n
			}
		}
	}
	b.ReportMetric(worstNorm*100, "worst-norm-%")
}

// BenchmarkTraffic measures the §V-A redundancy-elimination pipeline on
// the real data plane.
func BenchmarkTraffic(b *testing.B) {
	var res experiments.TrafficResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Traffic("G1", 25, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CacheHitRate*100, "cache-hit-%")
	b.ReportMetric(res.TurboMPps, "turbo-MP/s")
	b.ReportMetric(res.VideoMPps, "video-MP/s")
}

// BenchmarkForecast runs the §V-B ARMA-vs-ARMAX prediction study.
func BenchmarkForecast(b *testing.B) {
	var res experiments.ForecastResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Forecast(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ARMA.FNRate()*100, "ARMA-FN-%")
	b.ReportMetric(res.ARMAX.FNRate()*100, "ARMAX-FN-%")
}

// BenchmarkCloud runs the §VII-F comparison against the cloud baseline.
func BenchmarkCloud(b *testing.B) {
	var cloudMs float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CloudComparison(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		cloudMs = float64(rows[0].CloudResp.Milliseconds())
	}
	b.ReportMetric(cloudMs, "cloud-resp-ms")
}

// BenchmarkOverhead measures §VII-G memory and CPU overhead.
func BenchmarkOverhead(b *testing.B) {
	var res experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Overhead(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MemoryMB, "wrapper-MB")
	b.ReportMetric(res.OffloadCPU*100, "offload-cpu-%")
}

// BenchmarkAblations runs the design-choice ablations (cache/LZ4
// stages, turbo quality, switching policy, buffer depth).
func BenchmarkAblations(b *testing.B) {
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Ablations(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UplinkNone/1024, "uplink-raw-KB")
	b.ReportMetric(res.UplinkBoth/1024, "uplink-opt-KB")
}

// BenchmarkMultiUser runs the §VIII FCFS-vs-priority study on a shared
// service device.
func BenchmarkMultiUser(b *testing.B) {
	var res experiments.MultiUserResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.MultiUser(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FCFSServedFirst), "fcfs-queue-jumped")
	b.ReportMetric(float64(res.PriorityServedFirst), "prio-queue-jumped")
}
