package gbooster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/fleet"
	"github.com/gbooster/gbooster/internal/metrics"
)

// ErrFleetOverCapacity reports an admission refused because a Fleet is
// already serving its MaxSessions cap. Refused peers' datagrams are
// dropped and counted in FleetStats.Rejected; a client retrying after
// other sessions drain is admitted normally.
var ErrFleetOverCapacity = fleet.ErrOverCapacity

// FleetConfig identifies what a Fleet serves and how many tenants it
// admits. Zero values mean "library default" throughout.
type FleetConfig struct {
	// Width, Height is the streaming resolution every session renders
	// at (must match the clients').
	Width, Height int
	// MaxSessions caps the concurrently admitted session population;
	// datagrams from new peers beyond the cap are dropped rather than
	// allocating toward OOM. 0 selects the library default (1024).
	MaxSessions int
	// GateWidth bounds how many sessions may render simultaneously on
	// the shared GPU backend: 0 = one per CPU, negative = unlimited.
	GateWidth int
	// IdleTimeout reaps sessions with no inbound traffic. It must
	// comfortably exceed the longest expected inter-frame gap: reaping
	// a live session discards transport state the peer cannot resync.
	// 0 selects the library default (2 minutes).
	IdleTimeout time.Duration
	// CacheBytes bounds each session's mirrored command cache. The
	// fleet's memory ceiling is MaxSessions times this, so the default
	// is deliberately small (1 MiB).
	CacheBytes int
	// EgressBatch tunes the fleet's coalescing egress writer, which
	// funnels every session's replies, ACKs, and retransmits into
	// batched socket writes (sendmmsg on linux): 0 enables it with the
	// library default batch (64), a positive value sets the per-flush
	// batch, and a negative value disables batching so every datagram
	// is its own syscall.
	EgressBatch int
}

// FleetStats is a point-in-time snapshot of a Fleet.
// Admitted/Rejected/NonProtocol/Frames and the gate counters are
// cumulative; Sessions, TimersArmed, and GateActive are instantaneous.
// It is an alias of the internal/metrics definition so fleet snapshots
// feed the metrics collectors directly.
type FleetStats = metrics.FleetStats

// Fleet is the multi-tenant counterpart of StreamServer: one UDP
// listener, many concurrent clients. Inbound datagrams are demultiplexed
// by source address onto per-session transport state, every session's
// retransmission timer runs on one shared timer wheel, and renders are
// scheduled through one bounded GPU gate, so the steady-state cost of a
// session is a single goroutine. Build with NewFleet, start with Serve
// or ServeConn, stop with Close.
type Fleet struct {
	cfg fleet.Config

	mu     sync.Mutex
	mgr    *fleet.Manager
	closed bool
}

// NewFleet builds a fleet manager serving cfg's resolution, tuned by
// opts (quality, parallelism, diff threshold). Per-session rendering is
// serial by default — with many tenants, the parallelism worth having
// is across sessions, which the GPU gate provides.
func NewFleet(cfg FleetConfig, opts ...Option) (*Fleet, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: fleet resolution %dx%d", ErrBadOptions, cfg.Width, cfg.Height)
	}
	o := buildOptions(opts)
	return &Fleet{cfg: fleet.Config{
		Width:           cfg.Width,
		Height:          cfg.Height,
		Quality:         o.quality,
		Parallelism:     o.parallelism,
		DiffThreshold:   o.diffThreshold,
		AdaptiveQuality: o.adaptiveQuality,
		QualityFloor:    o.qualityFloor,
		CacheBytes:      cfg.CacheBytes,
		MaxSessions:     cfg.MaxSessions,
		GateWidth:       cfg.GateWidth,
		IdleTimeout:     cfg.IdleTimeout,
		EgressBatch:     cfg.EgressBatch,
	}}, nil
}

// Serve listens on the UDP address and serves clients until Close (or
// the listener dying). It blocks for the fleet's whole life and returns
// ErrServerClosed after a clean Close.
func (f *Fleet) Serve(addr string) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("gbooster: fleet listen: %w", err)
	}
	return f.ServeConn(pc)
}

// ServeConn serves clients arriving on pc until Close. The fleet owns
// pc from here on and closes it on shutdown.
func (f *Fleet) ServeConn(pc net.PacketConn) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = pc.Close()
		return ErrServerClosed
	}
	if f.mgr != nil {
		f.mu.Unlock()
		_ = pc.Close()
		return fmt.Errorf("gbooster: fleet already serving")
	}
	mgr, err := fleet.New(pc, f.cfg)
	if err != nil {
		f.mu.Unlock()
		_ = pc.Close()
		return fmt.Errorf("gbooster: %w", err)
	}
	f.mgr = mgr
	f.mu.Unlock()

	mgr.Wait()

	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrServerClosed
	}
	// The listener died under the manager (fatal socket error).
	_ = mgr.Close()
	return fmt.Errorf("gbooster: fleet listener closed")
}

// Snapshot returns one consistent observation of the fleet's counters
// (zero before Serve/ServeConn) — the fleet-side mirror of
// Player.Snapshot.
func (f *Fleet) Snapshot() FleetSnapshot {
	return FleetSnapshot{FleetStats: f.Stats()}
}

// Stats returns a fleet snapshot (zero before Serve/ServeConn).
//
// Deprecated: read Snapshot().FleetStats. Kept as a thin accessor.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	mgr := f.mgr
	f.mu.Unlock()
	if mgr == nil {
		return FleetStats{}
	}
	s := mgr.Stats()
	return FleetStats{
		Sessions:        s.Sessions,
		PeakSessions:    s.PeakSessions,
		Admitted:        s.Admitted,
		Rejected:        s.Rejected,
		NonProtocol:     s.NonProtocol,
		Frames:          s.Frames,
		TimersArmed:     s.TimersArmed,
		GateWidth:       s.Gate.Width,
		GateEntries:     s.Gate.Entries,
		GateWaits:       s.Gate.Waits,
		GateActive:      s.Gate.Active,
		EgressDatagrams: s.EgressDatagrams,
		EgressSyscalls:  s.EgressSyscalls,
		EgressBatches:   s.EgressBatches,
		EgressDrops:     s.EgressDrops,

		FrameRate:         s.FrameRate,
		ForecastFrameRate: s.ForecastFrameRate,
	}
}

// Close shuts the fleet down — listener, every session, timer wheel —
// and unblocks Serve. It is idempotent and safe before Serve.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	mgr := f.mgr
	f.mu.Unlock()
	if mgr != nil {
		return mgr.Close()
	}
	return nil
}
