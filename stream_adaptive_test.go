package gbooster

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
)

// runConstrainedSession plays one workload session over a
// bandwidth-capped emulated link and returns the player stats plus the
// sorted per-frame StepFrame latencies.
func runConstrainedSession(t *testing.T, seed uint64, frames int, opts ...Option) (PlayerStats, []time.Duration) {
	t.Helper()
	const w, h = 96, 72
	player, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = player.Close() }()
	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// A link tight enough that multi-datagram frames queue behind each
	// other: serialization delay inflates RTT and overflows the shallow
	// emulated router buffer, producing drops and retransmits — the
	// congestion regime the quality ladder exists for. The parameters
	// live in the WiFiCongested profile, which pins this exact tuple.
	lc, ls := netsim.WiFiCongested.NewPair(seed)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeConn(ls, lc.Addr())
	}()
	defer func() {
		_ = srv.Close()
		wg.Wait()
	}()
	if err := player.ConnectConn("dev", lc, ls.Addr(), 1000); err != nil {
		t.Fatal(err)
	}
	lat := make([]time.Duration, 0, frames)
	for f := 0; f < frames; f++ {
		start := time.Now()
		if _, err := player.StepFrame(30 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return player.Stats(), lat
}

// p99 returns the 99th-percentile of a sorted latency slice.
func p99(sorted []time.Duration) time.Duration {
	return sorted[len(sorted)*99/100]
}

// TestAdaptiveQualityTradesQualityNotLatency is the ladder's A/B
// acceptance gate: on the same congested link, an adaptive-quality
// server must shed encode quality (visible to the player through the
// packet headers) and downlink bytes, without making tail frame latency
// worse than the fixed-quality server's. Trading fidelity for latency is
// the point; trading latency for fidelity would mean the ladder failed.
func TestAdaptiveQualityTradesQualityNotLatency(t *testing.T) {
	const frames = 80
	const ceiling = 85
	fixed, fixedLat := runConstrainedSession(t, 41, frames, WithQuality(ceiling))
	adaptive, adaptiveLat := runConstrainedSession(t, 41, frames,
		WithQuality(ceiling), WithAdaptiveQuality(25))

	// The fixed server never moves off its configured quality.
	if fixed.QualityMin != ceiling || fixed.QualityChanges != 0 {
		t.Fatalf("fixed server moved quality: min=%d changes=%d",
			fixed.QualityMin, fixed.QualityChanges)
	}
	// The adaptive server must have stepped down under this much
	// congestion, and the player must have seen it in-band.
	if adaptive.QualityMin >= ceiling {
		t.Fatalf("adaptive ladder never engaged: QualityMin=%d", adaptive.QualityMin)
	}
	if adaptive.QualityChanges == 0 {
		t.Fatal("player observed no quality changes from the adaptive server")
	}
	// Shedding quality must shed downlink bytes.
	if adaptive.DownlinkBytes >= fixed.DownlinkBytes {
		t.Fatalf("adaptive downlink %d B >= fixed %d B", adaptive.DownlinkBytes, fixed.DownlinkBytes)
	}
	// And it must buy latency, not cost it: tail frame time no worse
	// than the fixed run's (with slack for scheduler noise).
	fp, ap := p99(fixedLat), p99(adaptiveLat)
	if ap > fp+fp/2 {
		t.Fatalf("adaptive p99 %v exceeds fixed p99 %v by >50%%", ap, fp)
	}
	t.Logf("fixed: p99=%v downlink=%dB; adaptive: p99=%v downlink=%dB qualityMin=%d changes=%d",
		fp, fixed.DownlinkBytes, ap, adaptive.DownlinkBytes,
		adaptive.QualityMin, adaptive.QualityChanges)
}
