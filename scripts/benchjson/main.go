// Command benchjson converts `go test -bench` text output (on stdin)
// into the BENCH_dataplane.json schema: the raw benchmark series plus,
// for every `<name>/par=N` family, the speedup of each degree relative
// to the par=1 serial reference. The host's CPU count is recorded
// because the ratios are only meaningful when ncpu > 1 — parallel
// degrees cannot beat serial on a single-core machine.
//
// Usage:
//
//	go test -bench ... | go run ./scripts/benchjson -o BENCH_dataplane.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
}

type speedup struct {
	Benchmark     string             `json:"benchmark"`
	Par1NsPerOp   float64            `json:"par1_ns_per_op"`
	SpeedupVsPar1 map[string]float64 `json:"speedup_vs_par1"`
}

type report struct {
	Date       string        `json:"date"`
	NCPU       int           `json:"ncpu"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPU        string        `json:"cpu,omitempty"`
	Note       string        `json:"note"`
	Benchmarks []benchResult `json:"benchmarks"`
	Speedups   []speedup     `json:"speedups"`
}

// benchLine matches one `go test -bench` result row; the trailing
// -GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) MB/s)?`)

// parFamily splits `<prefix>/par=<N>` benchmark names.
var parFamily = regexp.MustCompile(`^(.+)/par=(\d+)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []benchResult
	seen := map[string]int{} // name -> index, last run wins
	cpu := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.MBPerS, _ = strconv.ParseFloat(m[4], 64)
		}
		if i, ok := seen[r.Name]; ok {
			results[i] = r
		} else {
			seen[r.Name] = len(results)
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	// Group `<prefix>/par=N` families and compute ns(par=1)/ns(par=N).
	families := map[string]map[string]float64{}
	for _, r := range results {
		if m := parFamily.FindStringSubmatch(r.Name); m != nil {
			if families[m[1]] == nil {
				families[m[1]] = map[string]float64{}
			}
			families[m[1]]["par="+m[2]] = r.NsPerOp
		}
	}
	var speedups []speedup
	for prefix, series := range families {
		base, ok := series["par=1"]
		if !ok || base <= 0 {
			continue
		}
		s := speedup{Benchmark: prefix, Par1NsPerOp: base, SpeedupVsPar1: map[string]float64{}}
		for deg, ns := range series {
			if deg == "par=1" || ns <= 0 {
				continue
			}
			s.SpeedupVsPar1[deg] = base / ns
		}
		speedups = append(speedups, s)
	}
	sort.Slice(speedups, func(i, j int) bool { return speedups[i].Benchmark < speedups[j].Benchmark })

	rep := report{
		Date:   time.Now().UTC().Format(time.RFC3339),
		NCPU:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPU:    cpu,
		Note: "speedup_vs_par1 = ns(par=1)/ns(par=N); parallel output is " +
			"byte-identical to serial at every degree, so these ratios are pure " +
			"latency wins. With ncpu=1 every ratio is ~1 by construction — " +
			"evaluate the >=2x par>=4 acceptance target on a multicore host.",
		Benchmarks: results,
		Speedups:   speedups,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
