// Command benchjson converts `go test -bench` text output (on stdin)
// into the BENCH_dataplane.json schema: the raw benchmark series plus,
// for every `<name>/par=N` family, the speedup of each degree relative
// to the par=1 serial reference. The host's CPU count is recorded
// because the ratios are only meaningful when ncpu > 1 — parallel
// degrees cannot beat serial on a single-core machine.
//
// Usage:
//
//	go test -bench ... | go run ./scripts/benchjson -o BENCH_dataplane.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	// Metrics carries every further `<value> <unit>` pair on the result
	// row: -benchmem's B/op and allocs/op, plus b.ReportMetric custom
	// units like wirebytes/frame.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type speedup struct {
	Benchmark     string             `json:"benchmark"`
	Par1NsPerOp   float64            `json:"par1_ns_per_op"`
	SpeedupVsPar1 map[string]float64 `json:"speedup_vs_par1"`
}

// uplinkSummary compares a `<name>/dict=on` benchmark's bytes on the
// wire against its `/dict=off` stateless-compression baseline.
type uplinkSummary struct {
	Benchmark       string  `json:"benchmark"`
	DictWirePerOp   float64 `json:"dict_wirebytes_per_frame"`
	NoDictWirePerOp float64 `json:"nodict_wirebytes_per_frame"`
	ReductionPct    float64 `json:"reduction_pct"`
}

// fleetPoint is one `<name>/sessions=N` series entry: per-frame service
// time, steady-state allocations, and the fleet-side goroutine cost of
// a session.
type fleetPoint struct {
	NsPerFrame           float64 `json:"ns_per_frame"`
	AllocsPerOp          float64 `json:"allocs_per_op"`
	GoroutinesPerSession float64 `json:"goroutines_per_session"`
}

// fleetSummary aggregates a `<name>/sessions=N` family. The scaling
// acceptance criteria read directly off it: alloc_spread_pct is the
// max-over-min allocs/op spread across session counts (flat means the
// per-frame path does no per-session-count work), and
// max_goroutines_per_session proves the O(1)-goroutines-per-session
// claim at every scale.
type fleetSummary struct {
	Benchmark               string                `json:"benchmark"`
	Sessions                map[string]fleetPoint `json:"sessions"`
	AllocSpreadPct          float64               `json:"alloc_spread_pct"`
	MaxGoroutinesPerSession float64               `json:"max_goroutines_per_session"`
}

// downlinkPoint is one `<name>/sessions=N/batch=on|off` series entry:
// per-frame downlink service time over a real UDP socket, steady-state
// allocations, and the achieved syscall coalescing.
type downlinkPoint struct {
	NsPerFrame          float64 `json:"ns_per_frame"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	DatagramsPerSyscall float64 `json:"datagrams_per_syscall"`
}

// downlinkSummary aggregates a `<name>/sessions=N/batch=on|off` family.
// syscall_reduction is, per session count, the batched path's
// datagrams-per-syscall over the direct path's (the direct path is 1.0
// by construction, so this is the egress writer's amortization factor);
// the >=4x acceptance target reads off the 64- and 1024-session
// entries.
type downlinkSummary struct {
	Benchmark        string                              `json:"benchmark"`
	Sessions         map[string]map[string]downlinkPoint `json:"sessions"`
	SyscallReduction map[string]float64                  `json:"syscall_reduction"`
}

// loadSummary aggregates a `<prefix>/scenario=<name>` family emitted by
// gbooster-load -bench: per scenario, the full SLO as a unit -> value
// map (p50_ms, p99_ms, fps, sessions_ok, gap_skips, handoffs_ok, ...)
// plus the frame count (iterations) and mean frame latency (ns/op).
type loadSummary struct {
	Benchmark string                        `json:"benchmark"`
	Scenarios map[string]map[string]float64 `json:"scenarios"`
}

// predictPoint is one forecast arm's outcome under an A/B preset:
// realized wake-latency stalls, modeled energy per delivered frame,
// radio wakeups, and the exceedance false-negative rate.
type predictPoint struct {
	Stalls     float64 `json:"stalls"`
	MJPerFrame float64 `json:"mj_per_frame"`
	WakeUps    float64 `json:"wakeups"`
	FNPct      float64 `json:"fn_pct"`
}

// predictSummary pairs a `<prefix>/preset=<p>/forecast=on` arm with its
// `/forecast=off` reactive baseline. The PR's acceptance gate reads off
// the reductions: forecast-on must show fewer stalls and lower energy
// per delivered frame (both reductions positive).
type predictSummary struct {
	Benchmark          string       `json:"benchmark"`
	Preset             string       `json:"preset"`
	ForecastOn         predictPoint `json:"forecast_on"`
	ForecastOff        predictPoint `json:"forecast_off"`
	StallReductionPct  float64      `json:"stall_reduction_pct"`
	EnergyReductionPct float64      `json:"energy_per_frame_reduction_pct"`
}

type report struct {
	Date       string `json:"date"`
	NCPU       int    `json:"ncpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	// SpeedupGate records whether the par>=4 speedup acceptance target
	// is meaningful on this host: "evaluated" with 4+ CPUs,
	// "skipped-ncpu<4" otherwise — so a single-core run can never be
	// mistaken for a passing (or failing) parallel result.
	SpeedupGate string          `json:"speedup_gate"`
	Note        string          `json:"note"`
	Benchmarks  []benchResult     `json:"benchmarks"`
	Speedups    []speedup         `json:"speedups,omitempty"`
	Uplink      []uplinkSummary   `json:"uplink,omitempty"`
	Fleet       []fleetSummary    `json:"fleet,omitempty"`
	Downlink    []downlinkSummary `json:"downlink,omitempty"`
	Load        []loadSummary     `json:"load,omitempty"`
	Predict     []predictSummary  `json:"predict,omitempty"`
}

// benchLine matches one `go test -bench` result row; the trailing
// -GOMAXPROCS suffix is stripped from the name. Everything after the
// iteration count is parsed as `<value> <unit>` pairs.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// parFamily splits `<prefix>/par=<N>` benchmark names.
var parFamily = regexp.MustCompile(`^(.+)/par=(\d+)$`)

// dictFamily splits `<prefix>/dict=on|off` benchmark names.
var dictFamily = regexp.MustCompile(`^(.+)/dict=(on|off)$`)

// sessionsFamily splits `<prefix>/sessions=<N>` benchmark names.
var sessionsFamily = regexp.MustCompile(`^(.+)/sessions=(\d+)$`)

// downlinkFamily splits `<prefix>/sessions=<N>/batch=on|off` names.
var downlinkFamily = regexp.MustCompile(`^(.+)/sessions=(\d+)/batch=(on|off)$`)

// scenarioFamily splits `<prefix>/scenario=<name>` benchmark names.
var scenarioFamily = regexp.MustCompile(`^(.+)/scenario=(.+)$`)

// predictFamily splits `<prefix>/preset=<p>/forecast=on|off` names.
var predictFamily = regexp.MustCompile(`^(.+)/preset=(.+)/forecast=(on|off)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	minMBPS := flag.String("min-mbps", "",
		"regression gate '<benchmark>:<min>': exit nonzero unless the named benchmark ran and hit at least <min> MB/s")
	flag.Parse()

	var results []benchResult
	seen := map[string]int{} // name -> index, last run wins
	cpu := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
		// Remaining `<value> <unit>` pairs: MB/s keeps its legacy field,
		// everything else (B/op, allocs/op, custom ReportMetric units)
		// lands in Metrics.
		f := strings.Fields(line)
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				// already captured
			case "MB/s":
				r.MBPerS = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		if i, ok := seen[r.Name]; ok {
			results[i] = r
		} else {
			seen[r.Name] = len(results)
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	// Group `<prefix>/par=N` families and compute ns(par=1)/ns(par=N).
	families := map[string]map[string]float64{}
	for _, r := range results {
		if m := parFamily.FindStringSubmatch(r.Name); m != nil {
			if families[m[1]] == nil {
				families[m[1]] = map[string]float64{}
			}
			families[m[1]]["par="+m[2]] = r.NsPerOp
		}
	}
	var speedups []speedup
	for prefix, series := range families {
		base, ok := series["par=1"]
		if !ok || base <= 0 {
			continue
		}
		s := speedup{Benchmark: prefix, Par1NsPerOp: base, SpeedupVsPar1: map[string]float64{}}
		for deg, ns := range series {
			if deg == "par=1" || ns <= 0 {
				continue
			}
			s.SpeedupVsPar1[deg] = base / ns
		}
		speedups = append(speedups, s)
	}
	sort.Slice(speedups, func(i, j int) bool { return speedups[i].Benchmark < speedups[j].Benchmark })

	// Pair `<prefix>/dict=on` with `/dict=off` on wirebytes/frame and
	// report the dictionary's wire-size reduction.
	dictWire := map[string]map[string]float64{}
	for _, r := range results {
		m := dictFamily.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		w, ok := r.Metrics["wirebytes/frame"]
		if !ok {
			continue
		}
		if dictWire[m[1]] == nil {
			dictWire[m[1]] = map[string]float64{}
		}
		dictWire[m[1]][m[2]] = w
	}
	var uplinks []uplinkSummary
	for prefix, series := range dictWire {
		on, off := series["on"], series["off"]
		if on <= 0 || off <= 0 {
			continue
		}
		uplinks = append(uplinks, uplinkSummary{
			Benchmark:       prefix,
			DictWirePerOp:   on,
			NoDictWirePerOp: off,
			ReductionPct:    100 * (1 - on/off),
		})
	}
	sort.Slice(uplinks, func(i, j int) bool { return uplinks[i].Benchmark < uplinks[j].Benchmark })

	// Group `<prefix>/sessions=N` multi-tenant scaling families: ns/op is
	// ns/frame (the bench loop serves one frame per iteration), allocs/op
	// and goroutines/session come off the result row's metrics.
	fleetFamilies := map[string]map[string]fleetPoint{}
	for _, r := range results {
		m := sessionsFamily.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		if fleetFamilies[m[1]] == nil {
			fleetFamilies[m[1]] = map[string]fleetPoint{}
		}
		fleetFamilies[m[1]][m[2]] = fleetPoint{
			NsPerFrame:           r.NsPerOp,
			AllocsPerOp:          r.Metrics["allocs/op"],
			GoroutinesPerSession: r.Metrics["goroutines/session"],
		}
	}
	var fleets []fleetSummary
	for prefix, series := range fleetFamilies {
		s := fleetSummary{Benchmark: prefix, Sessions: series}
		minA, maxA := math.Inf(1), math.Inf(-1)
		for _, p := range series {
			if p.AllocsPerOp < minA {
				minA = p.AllocsPerOp
			}
			if p.AllocsPerOp > maxA {
				maxA = p.AllocsPerOp
			}
			if p.GoroutinesPerSession > s.MaxGoroutinesPerSession {
				s.MaxGoroutinesPerSession = p.GoroutinesPerSession
			}
		}
		if minA > 0 {
			s.AllocSpreadPct = 100 * (maxA - minA) / minA
		}
		fleets = append(fleets, s)
	}
	sort.Slice(fleets, func(i, j int) bool { return fleets[i].Benchmark < fleets[j].Benchmark })

	// Group `<prefix>/sessions=N/batch=on|off` downlink families and
	// compute the per-session-count syscall amortization of the batched
	// egress path over the direct one.
	downlinkFamilies := map[string]map[string]map[string]downlinkPoint{}
	for _, r := range results {
		m := downlinkFamily.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		if downlinkFamilies[m[1]] == nil {
			downlinkFamilies[m[1]] = map[string]map[string]downlinkPoint{}
		}
		if downlinkFamilies[m[1]][m[2]] == nil {
			downlinkFamilies[m[1]][m[2]] = map[string]downlinkPoint{}
		}
		downlinkFamilies[m[1]][m[2]][m[3]] = downlinkPoint{
			NsPerFrame:          r.NsPerOp,
			AllocsPerOp:         r.Metrics["allocs/op"],
			DatagramsPerSyscall: r.Metrics["datagrams/syscall"],
		}
	}
	var downlinks []downlinkSummary
	for prefix, series := range downlinkFamilies {
		s := downlinkSummary{
			Benchmark:        prefix,
			Sessions:         series,
			SyscallReduction: map[string]float64{},
		}
		for n, modes := range series {
			on, off := modes["on"], modes["off"]
			if on.DatagramsPerSyscall > 0 && off.DatagramsPerSyscall > 0 {
				s.SyscallReduction[n] = on.DatagramsPerSyscall / off.DatagramsPerSyscall
			}
		}
		downlinks = append(downlinks, s)
	}
	sort.Slice(downlinks, func(i, j int) bool { return downlinks[i].Benchmark < downlinks[j].Benchmark })

	// Group `<prefix>/scenario=<name>` load-harness families: iterations
	// are displayed frames, ns/op the mean frame latency, and every SLO
	// field rides the row as a `<value> <unit>` metric.
	loadFamilies := map[string]map[string]map[string]float64{}
	for _, r := range results {
		m := scenarioFamily.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		if loadFamilies[m[1]] == nil {
			loadFamilies[m[1]] = map[string]map[string]float64{}
		}
		slo := map[string]float64{
			"frames":          float64(r.Iterations),
			"mean_latency_ns": r.NsPerOp,
		}
		for unit, v := range r.Metrics {
			slo[unit] = v
		}
		loadFamilies[m[1]][m[2]] = slo
	}
	var loads []loadSummary
	for prefix, scenarios := range loadFamilies {
		loads = append(loads, loadSummary{Benchmark: prefix, Scenarios: scenarios})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].Benchmark < loads[j].Benchmark })

	// Pair `<prefix>/preset=<p>/forecast=on|off` A/B arms and compute
	// the forecast's stall and energy-per-frame reductions.
	predictArms := map[string]map[string]predictPoint{}
	for _, r := range results {
		m := predictFamily.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		key := m[1] + "\x00" + m[2]
		if predictArms[key] == nil {
			predictArms[key] = map[string]predictPoint{}
		}
		predictArms[key][m[3]] = predictPoint{
			Stalls:     r.Metrics["stalls"],
			MJPerFrame: r.Metrics["mJ/frame"],
			WakeUps:    r.Metrics["wakeups"],
			FNPct:      r.Metrics["fn%"],
		}
	}
	var predicts []predictSummary
	for key, arms := range predictArms {
		on, okOn := arms["on"]
		off, okOff := arms["off"]
		if !okOn || !okOff {
			continue
		}
		parts := strings.SplitN(key, "\x00", 2)
		s := predictSummary{
			Benchmark:   parts[0],
			Preset:      parts[1],
			ForecastOn:  on,
			ForecastOff: off,
		}
		if off.Stalls > 0 {
			s.StallReductionPct = 100 * (1 - on.Stalls/off.Stalls)
		}
		if off.MJPerFrame > 0 {
			s.EnergyReductionPct = 100 * (1 - on.MJPerFrame/off.MJPerFrame)
		}
		predicts = append(predicts, s)
	}
	sort.Slice(predicts, func(i, j int) bool {
		if predicts[i].Benchmark != predicts[j].Benchmark {
			return predicts[i].Benchmark < predicts[j].Benchmark
		}
		return predicts[i].Preset < predicts[j].Preset
	})

	gate := "evaluated"
	if runtime.NumCPU() < 4 {
		gate = "skipped-ncpu<4"
	}
	rep := report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		NCPU:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         cpu,
		SpeedupGate: gate,
		Note: "speedup_vs_par1 = ns(par=1)/ns(par=N); parallel output is " +
			"byte-identical to serial at every degree, so these ratios are pure " +
			"latency wins. With ncpu=1 every ratio is ~1 by construction — " +
			"evaluate the >=2x par>=4 acceptance target on a multicore host.",
		Benchmarks: results,
		Speedups:   speedups,
		Uplink:     uplinks,
		Fleet:      fleets,
		Downlink:   downlinks,
		Load:       loads,
		Predict:    predicts,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	// The regression gate runs after the report is written so a failing
	// run still leaves its numbers on disk for inspection.
	if *minMBPS != "" {
		if err := checkMinMBPS(*minMBPS, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkMinMBPS enforces a '<benchmark>:<min>' throughput floor. A
// missing benchmark fails the gate too: a renamed or skipped series
// must not read as a pass.
func checkMinMBPS(spec string, results []benchResult) error {
	i := strings.LastIndex(spec, ":")
	if i <= 0 {
		return fmt.Errorf("min-mbps: bad spec %q, want '<benchmark>:<min>'", spec)
	}
	name := spec[:i]
	min, err := strconv.ParseFloat(spec[i+1:], 64)
	if err != nil {
		return fmt.Errorf("min-mbps: bad threshold in %q: %v", spec, err)
	}
	for _, r := range results {
		if r.Name != name {
			continue
		}
		if r.MBPerS < min {
			return fmt.Errorf("min-mbps: %s ran at %.2f MB/s, below the %.2f MB/s floor", name, r.MBPerS, min)
		}
		fmt.Fprintf(os.Stderr, "benchjson: min-mbps gate: %s %.2f MB/s >= %.2f MB/s\n", name, r.MBPerS, min)
		return nil
	}
	return fmt.Errorf("min-mbps: benchmark %q not found in input", name)
}
