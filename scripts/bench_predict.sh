#!/bin/sh
# Predictive control plane A/B: the same deterministic spike and
# flash-crowd traffic traces are played through the forecast-on arm
# (ARMAX pre-wakes WiFi ahead of bursts) and the forecast-off reactive
# baseline, and the wake-latency stalls, modeled energy per delivered
# frame, radio wakeups, and exceedance miss rates land in
# BENCH_predict.json. The acceptance gate (fewer stalls AND lower
# energy per frame with the forecast on) is also asserted by
# TestABGate in internal/predict.
#
#   BENCHTIME=1x sh scripts/bench_predict.sh   # smoke run (check.sh)
#   sh scripts/bench_predict.sh                # full run
set -eu

cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_predict.json}"
BENCHTIME="${BENCHTIME:-1x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkPredictAB' -benchtime "$BENCHTIME" \
	./internal/predict/ | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
