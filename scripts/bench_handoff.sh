#!/bin/sh
# Session handoff benchmark: checkpoint capture cost (the work done
# under the client's lock when a device hot-joins or is readmitted) and
# cold-server restore cost (decode + rebuild of GL context, command
# cache, and LZ4 dictionary), over a live mid-session workload state.
# The bootbytes metric is the bootstrap stream size a handoff ships
# instead of replaying the session's full history. Results land in
# BENCH_handoff.json.
#
#   BENCHTIME=1x sh scripts/bench_handoff.sh   # smoke run (check.sh)
#   sh scripts/bench_handoff.sh                # full 2s-per-series run
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_handoff.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkHandoff' -benchmem \
	-benchtime "$BENCHTIME" ./internal/core/ | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
