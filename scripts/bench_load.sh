#!/bin/sh
# Load-harness scenario sweep: gbooster-load drives the four preset
# scenarios (production-day, spike, flash-crowd, churn) against a fresh
# in-process fleet each, and the per-scenario SLOs — p50/p99 frame
# latency, delivered FPS, gap-skips, failover/handoff activity,
# quality-ladder movement, fleet capacity pressure — land in
# BENCH_load.json (ncpu-annotated; absolute numbers are host-dependent,
# the session accounting and activity counters are not).
#
#   SESSIONS=8 FRAMES=10 sh scripts/bench_load.sh   # smoke run (check.sh)
#   sh scripts/bench_load.sh                        # full preset-size run
set -eu

cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_load.json}"
SCENARIOS="${SCENARIOS:-all}"
SESSIONS="${SESSIONS:-0}"
FRAMES="${FRAMES:-0}"
WIDTH="${WIDTH:-320}"
HEIGHT="${HEIGHT:-240}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go run ./cmd/gbooster-load -bench -scenario "$SCENARIOS" \
	-sessions "$SESSIONS" -frames "$FRAMES" \
	-width "$WIDTH" -height "$HEIGHT" | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
