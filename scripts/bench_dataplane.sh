#!/bin/sh
# Data-plane benchmark sweep: tile-parallel turbo encode/decode, band-
# parallel rasterization, and the pipelined (render||encode) frame loop,
# each across worker degrees {1, 2, 4, NumCPU}. Results land in
# BENCH_dataplane.json with par=1-relative speedups and the host's CPU
# count (the speedups only mean something on a multicore machine).
#
#   BENCHTIME=1x sh scripts/bench_dataplane.sh   # smoke run (check.sh)
#   sh scripts/bench_dataplane.sh                # full 1s-per-series run
#
# Set MIN_MBPS='<benchmark>:<floor>' to fail the run unless the named
# series hits the floor (check.sh gates the single-thread 720p encode
# this way).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_dataplane.json}"
MIN_MBPS="${MIN_MBPS:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkTurboEncode|BenchmarkTurboDecode' \
	-benchtime "$BENCHTIME" ./internal/turbo/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkRaster' \
	-benchtime "$BENCHTIME" ./internal/gles/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFramePipeline' \
	-benchtime "$BENCHTIME" ./internal/core/ | tee -a "$tmp"

if [ -n "$MIN_MBPS" ]; then
	go run ./scripts/benchjson -o "$OUT" -min-mbps "$MIN_MBPS" <"$tmp"
else
	go run ./scripts/benchjson -o "$OUT" <"$tmp"
fi
echo "wrote $OUT"
