#!/bin/sh
# Multi-tenant fleet benchmark: steady-state per-frame service cost of
# the shared-listener session manager at 1, 64, and 1024 concurrent
# sessions. ns/op is ns/frame (one frame served per iteration); the
# acceptance criteria read off the two extra series: allocs/op must stay
# flat across session counts (no per-session-count work on the frame
# path) and goroutines/session must stay O(1) — one serve goroutine per
# session, with demux, retransmission timing, and GPU scheduling
# amortized over the whole fleet. Results land in BENCH_fleet.json.
#
#   BENCHTIME=1x sh scripts/bench_fleet.sh   # smoke run (check.sh)
#   sh scripts/bench_fleet.sh                # full 500-frame-per-series run
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-500x}"
OUT="${OUT:-BENCH_fleet.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFleetServe' -benchmem \
	-benchtime "$BENCHTIME" ./internal/fleet/ | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
