#!/bin/sh
# Uplink encode benchmark: per-frame cost and bytes on the wire of the
# client send path (mirrored-cache encode + LZ4 + framing) over the
# workload game trace, with the inter-frame dictionary compressor
# (dict=on) against the stateless per-frame baseline (dict=off).
# Results land in BENCH_uplink.json with the dictionary's wire-size
# reduction computed from the wirebytes/frame metric.
#
#   BENCHTIME=1x sh scripts/bench_uplink.sh   # smoke run (check.sh)
#   sh scripts/bench_uplink.sh                # full 2s-per-series run
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_uplink.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkUplinkFrame' -benchmem \
	-benchtime "$BENCHTIME" ./internal/core/ | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
