#!/bin/sh
# Downlink throughput benchmark: per-frame service cost and syscall
# amortization of the fleet's serve path over a real UDP socket at 1,
# 64, and 1024 concurrent sessions, with the coalescing egress writer
# on (sendmmsg batching) and off (one WriteTo per datagram). ns/op is
# ns/frame; the acceptance criteria read off the datagrams/syscall
# series — batch=on must hit >=4x the batch=off baseline at 64+
# sessions — and allocs/op, which must stay flat across the two modes
# (batching moves syscalls, not garbage). The wire traffic is
# byte-identical in both modes (internal/batchio parity tests pin
# this). Results land in BENCH_downlink.json.
#
#   BENCHTIME=1x sh scripts/bench_downlink.sh   # smoke run (check.sh)
#   sh scripts/bench_downlink.sh                # full 500-frame-per-series run
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-500x}"
OUT="${OUT:-BENCH_downlink.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkDownlinkServe' -benchmem \
	-benchtime "$BENCHTIME" ./internal/fleet/ | tee "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
