#!/bin/sh
# Repo check gate: the tier-1 verify from ROADMAP.md plus static vetting
# and race-detector coverage of the concurrency-heavy packages (the
# reliable-UDP transport and the client/server core). Loss-soak tests
# honor -short, so the race pass stays fast.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race -short ./internal/rudp/... ./internal/core/...
# Fleet soak under the race detector: 64 sessions with churn and crash
# injection demuxed over one listener, plus the dispatch gate. The
# demux loop, timer wheel, admission path, and idle reaper all
# interleave here.
go test -race -short ./internal/fleet/... ./internal/dispatch/...
# Peer-validation regression gates: the stray-peer datagram drop in the
# transport read loop, the garbage-first-datagram accept check, and the
# absolute accept deadline.
go test -race -run 'Stray|GarbageFirstDatagram|AcceptDeadline' ./internal/rudp/... .
# Device-crash failover soaks under the race detector: the blackhole
# fault injector plus the client's failover loop are the most
# contended paths in the tree.
go test -race -short -run 'Failover|Crash|Blackhole' ./internal/netsim/... .
# Session handoff soaks under the race detector: the checkpoint
# capture, the handoff goroutine's queued-send path, and the
# crash-recover-hot-join lifecycle all interleave with the flush and
# failover paths.
go test -race -short -run 'Handoff|HotJoin' ./internal/core/... .
# Uplink allocation gate: the steady-state flush path must stay at
# exactly zero allocations per frame. Runs without -race on purpose —
# the race runtime's shadow allocations make an exact-zero assertion
# impossible, so the race pass above skips this test by design.
go test -run 'TestUplinkFlushZeroAllocSteadyState' -count=1 ./internal/core/
# Downlink allocation gate: the whole serve cycle — rudp receive,
# reassembly, decompress, cache decode, wire decode, execute, encode,
# reply send, ACK — must also be zero-alloc at steady state. Same
# non-race rationale as the uplink gate.
go test -run 'TestDownlinkServeZeroAllocSteadyState' -count=1 ./internal/core/
# Batched-egress race gates: sendmmsg/recvmmsg parity with the portable
# loop (byte-identical wire traffic), and the fleet egress writer's
# ordering/overflow behavior under producer concurrency.
go test -race -count=1 ./internal/batchio/
go test -race -run 'TestEgress' -count=1 ./internal/fleet/
# Data-plane benchmark smoke: a few iterations per series prove the
# parallel encode/raster/pipeline paths still run and refresh
# BENCH_dataplane.json's schema, while the MIN_MBPS gate catches a
# single-thread turbo-encode throughput regression (the fixed-point
# pipeline sustains ~110 MB/s at 720p; 60 leaves headroom for slow
# CI hosts). Full numbers come from running scripts/bench_dataplane.sh
# without BENCHTIME.
BENCHTIME=5x OUT=/tmp/BENCH_dataplane.smoke.json \
	MIN_MBPS='BenchmarkTurboEncode/1280x720/par=1:60' \
	sh scripts/bench_dataplane.sh
# Uplink benchmark smoke: proves the dict=on/dict=off encode series and
# the BENCH_uplink.json summary still build. Full numbers come from
# running scripts/bench_uplink.sh without BENCHTIME.
BENCHTIME=1x OUT=/tmp/BENCH_uplink.smoke.json sh scripts/bench_uplink.sh
# Handoff benchmark smoke: proves the checkpoint capture/restore series
# and the BENCH_handoff.json summary still build. Full numbers come
# from running scripts/bench_handoff.sh without BENCHTIME.
BENCHTIME=1x OUT=/tmp/BENCH_handoff.smoke.json sh scripts/bench_handoff.sh
# Fleet benchmark smoke: proves the sessions=1/64/1024 scaling series
# and the BENCH_fleet.json summary still build. Full numbers come from
# running scripts/bench_fleet.sh without BENCHTIME.
BENCHTIME=1x OUT=/tmp/BENCH_fleet.smoke.json sh scripts/bench_fleet.sh
# Downlink benchmark smoke: proves the sessions x batch=on/off series
# over a real UDP socket and the BENCH_downlink.json summary still
# build. Full numbers come from running scripts/bench_downlink.sh
# without BENCHTIME.
BENCHTIME=1x OUT=/tmp/BENCH_downlink.smoke.json sh scripts/bench_downlink.sh
# Load-harness race smokes: the worker-pool executor, the hub's
# per-port shapers, and the fleet's demux/reap paths all interleave
# here — first the in-process churn/hot-join executor tests, then a
# scaled-down flash-crowd stampede through the real CLI.
go test -race -short ./internal/loadgen/
go run -race ./cmd/gbooster-load -scenario flash-crowd \
	-sessions 8 -frames 8 -width 128 -height 96 >/dev/null
# Load-harness benchmark smoke: proves all four scenario presets still
# run end to end and the BENCH_load.json summary still builds. Full
# numbers come from running scripts/bench_load.sh without overrides.
SESSIONS=6 FRAMES=8 WIDTH=128 HEIGHT=96 OUT=/tmp/BENCH_load.smoke.json \
	sh scripts/bench_load.sh >/dev/null
# Predictive control plane under the race detector: the live player
# drives ObserveFrame / Tick / Snapshot from three goroutines, and the
# forecast on/off A/B gate (fewer wake stalls AND lower energy per
# delivered frame with the forecast on) runs inside the same pass.
go test -race -short ./internal/predict/ ./internal/timeseries/ ./internal/ifswitch/
# Forecast on/off A/B smoke through the real player path: a predictive
# session must run end to end and carry its prediction/energy block
# through Player.Snapshot.
go test -race -run 'TestPredictiveControlSnapshot|TestPredictDefaultOff' -count=1 .
# Predict benchmark smoke: proves the preset x forecast=on/off series
# and the BENCH_predict.json summary still build. Full numbers come
# from running scripts/bench_predict.sh without BENCHTIME.
BENCHTIME=1x OUT=/tmp/BENCH_predict.smoke.json sh scripts/bench_predict.sh >/dev/null
