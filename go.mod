module github.com/gbooster/gbooster

go 1.22
